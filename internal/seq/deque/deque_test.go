package deque

import (
	"math/rand/v2"
	"sort"
	"testing"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
)

func newEnvDeque() (*memsim.DetEnv, *Deque) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	return env, New(env.Boot())
}

func TestEmptyDeque(t *testing.T) {
	env, d := newEnvDeque()
	boot := env.Boot()
	if _, ok := d.PopLeft(boot); ok {
		t.Error("PopLeft on empty succeeded")
	}
	if _, ok := d.PopRight(boot); ok {
		t.Error("PopRight on empty succeeded")
	}
	if d.Len(boot) != 0 {
		t.Error("empty deque nonzero length")
	}
	if msg := d.CheckInvariants(boot); msg != "" {
		t.Error(msg)
	}
}

func TestPushPopBothEnds(t *testing.T) {
	env, d := newEnvDeque()
	boot := env.Boot()
	d.PushLeft(boot, 2)
	d.PushLeft(boot, 1)
	d.PushRight(boot, 3)
	// order: 1 2 3
	items := d.Items(boot, nil)
	if len(items) != 3 || items[0] != 1 || items[1] != 2 || items[2] != 3 {
		t.Fatalf("items = %v, want [1 2 3]", items)
	}
	if v, ok := d.PopLeft(boot); !ok || v != 1 {
		t.Fatalf("PopLeft = (%d,%v)", v, ok)
	}
	if v, ok := d.PopRight(boot); !ok || v != 3 {
		t.Fatalf("PopRight = (%d,%v)", v, ok)
	}
	if v, ok := d.PopRight(boot); !ok || v != 2 {
		t.Fatalf("PopRight = (%d,%v)", v, ok)
	}
	if msg := d.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	env, d := newEnvDeque()
	boot := env.Boot()
	var model []uint64
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 3000; i++ {
		v := rng.Uint64N(1 << 30)
		switch rng.IntN(4) {
		case 0:
			d.PushLeft(boot, v)
			model = append([]uint64{v}, model...)
		case 1:
			d.PushRight(boot, v)
			model = append(model, v)
		case 2:
			got, ok := d.PopLeft(boot)
			if ok != (len(model) > 0) {
				t.Fatalf("step %d: PopLeft ok=%v model len %d", i, ok, len(model))
			}
			if ok {
				if got != model[0] {
					t.Fatalf("step %d: PopLeft = %d, want %d", i, got, model[0])
				}
				model = model[1:]
			}
		case 3:
			got, ok := d.PopRight(boot)
			if ok != (len(model) > 0) {
				t.Fatalf("step %d: PopRight ok=%v", i, ok)
			}
			if ok {
				if got != model[len(model)-1] {
					t.Fatalf("step %d: PopRight = %d, want %d", i, got, model[len(model)-1])
				}
				model = model[:len(model)-1]
			}
		}
	}
	items := d.Items(boot, nil)
	if len(items) != len(model) {
		t.Fatalf("final lengths: %d vs %d", len(items), len(model))
	}
	for i := range items {
		if items[i] != model[i] {
			t.Fatalf("final contents differ at %d", i)
		}
	}
	if msg := d.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}

func TestPushNMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for trial := 0; trial < 30; trial++ {
		envA, a := newEnvDeque()
		envB, b := newEnvDeque()
		bootA, bootB := envA.Boot(), envB.Boot()
		pre := rng.IntN(5)
		for i := 0; i < pre; i++ {
			a.PushRight(bootA, uint64(i))
			b.PushRight(bootB, uint64(i))
		}
		vals := make([]uint64, 1+rng.IntN(6))
		for i := range vals {
			vals[i] = rng.Uint64N(100)
		}
		left := trial%2 == 0
		if left {
			for _, v := range vals {
				a.PushLeft(bootA, v)
			}
			b.PushLeftN(bootB, vals)
		} else {
			for _, v := range vals {
				a.PushRight(bootA, v)
			}
			b.PushRightN(bootB, vals)
		}
		ia := a.Items(bootA, nil)
		ib := b.Items(bootB, nil)
		if len(ia) != len(ib) {
			t.Fatalf("trial %d: lengths differ", trial)
		}
		for i := range ia {
			if ia[i] != ib[i] {
				t.Fatalf("trial %d: contents differ: %v vs %v", trial, ia, ib)
			}
		}
		if msg := b.CheckInvariants(bootB); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
	}
}

func TestCombineEndElimination(t *testing.T) {
	env, d := newEnvDeque()
	boot := env.Boot()
	ops := []engine.Op{
		PushLeftOp{D: d, Val: 10},
		PopLeftOp{D: d},
		PushLeftOp{D: d, Val: 20},
	}
	res := make([]uint64, 3)
	done := make([]bool, 3)
	CombineLeft(boot, ops, res, done)
	if v, ok := engine.Unpack(res[1]); !ok || v != 10 {
		t.Fatalf("eliminated pop got (%d,%v), want (10,true)", v, ok)
	}
	// Only the surplus push (20) physically landed.
	items := d.Items(boot, nil)
	if len(items) != 1 || items[0] != 20 {
		t.Fatalf("deque = %v, want [20]", items)
	}
}

func TestCombineMixedBothEnds(t *testing.T) {
	env, d := newEnvDeque()
	boot := env.Boot()
	d.PushLeft(boot, 1) // deque: [1]
	ops := []engine.Op{
		PushRightOp{D: d, Val: 9},
		PopLeftOp{D: d},
		PushLeftOp{D: d, Val: 5},
	}
	res := make([]uint64, 3)
	done := make([]bool, 3)
	CombineMixed(boot, ops, res, done)
	for i, dn := range done {
		if !dn {
			t.Fatalf("op %d left undone", i)
		}
	}
	// Left pass: the pop precedes the push in the batch, so it executes
	// physically (returns 1) and PushLeft(5) lands afterwards.
	if v, ok := engine.Unpack(res[1]); !ok || v != 1 {
		t.Fatalf("PopLeft got (%d,%v), want (1,true)", v, ok)
	}
	items := d.Items(boot, nil)
	if len(items) != 2 || items[0] != 5 || items[1] != 9 {
		t.Fatalf("deque = %v, want [5 9]", items)
	}
	if msg := d.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}

func buildDequeEngines(t *testing.T, env memsim.Env, hold bool) (map[string]engine.Engine, *Deque) {
	t.Helper()
	d := New(env.Boot())
	hcf, err := core.New(env, core.Config{Policies: Policies(), HoldSelectionLock: hold})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() engines.Options { return engines.Options{Combine: CombineMixed} }
	return map[string]engine.Engine{
		"Lock":   engines.NewLock(env, mk()),
		"TLE":    engines.NewTLE(env, mk()),
		"FC":     engines.NewFC(env, mk()),
		"SCM":    engines.NewSCM(env, mk()),
		"TLE+FC": engines.NewTLEFC(env, mk()),
		"HCF":    hcf,
	}, d
}

// TestConcurrentConservationAllEngines: popped values plus remaining deque
// contents must equal pushed values as a multiset, for both framework
// variants and all baselines.
func TestConcurrentConservationAllEngines(t *testing.T) {
	const threads, perThread = 8, 40
	for _, variant := range []struct {
		name string
		hold bool
	}{{"generic", false}, {"specialized", true}} {
		for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
			t.Run(variant.name+"/"+name, func(t *testing.T) {
				env := memsim.NewDet(memsim.DetConfig{Threads: threads})
				engs, d := buildDequeEngines(t, env, variant.hold)
				eng := engs[name]
				pushed := make([][]uint64, threads)
				popped := make([][]uint64, threads)
				env.Run(func(th *memsim.Thread) {
					rng := rand.New(rand.NewPCG(uint64(th.ID()), 23))
					for i := 0; i < perThread; i++ {
						v := uint64(th.ID()*1000 + i)
						switch rng.IntN(4) {
						case 0:
							eng.Execute(th, PushLeftOp{D: d, Val: v})
							pushed[th.ID()] = append(pushed[th.ID()], v)
						case 1:
							eng.Execute(th, PushRightOp{D: d, Val: v})
							pushed[th.ID()] = append(pushed[th.ID()], v)
						case 2:
							if x, ok := engine.Unpack(eng.Execute(th, PopLeftOp{D: d})); ok {
								popped[th.ID()] = append(popped[th.ID()], x)
							}
						case 3:
							if x, ok := engine.Unpack(eng.Execute(th, PopRightOp{D: d})); ok {
								popped[th.ID()] = append(popped[th.ID()], x)
							}
						}
					}
				})
				boot := env.Boot()
				if msg := d.CheckInvariants(boot); msg != "" {
					t.Fatal(msg)
				}
				var in, out []uint64
				for i := 0; i < threads; i++ {
					in = append(in, pushed[i]...)
					out = append(out, popped[i]...)
				}
				out = d.Items(boot, out)
				sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
				sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
				if len(in) != len(out) {
					t.Fatalf("pushed %d, accounted %d", len(in), len(out))
				}
				for i := range in {
					if in[i] != out[i] {
						t.Fatalf("multiset mismatch at %d", i)
					}
				}
			})
		}
	}
}
