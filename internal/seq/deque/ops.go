package deque

import (
	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
)

// Operation classes: one per end, each with its own publication array
// (§2.4: "operations on different ends of a double-ended queue").
const (
	ClassLeft = iota
	ClassRight
	// NumClasses is the number of operation classes.
	NumClasses
)

// PushLeftOp pushes at the left end. Result: PackBool(true).
type PushLeftOp struct {
	D   *Deque
	Val uint64
}

// PopLeftOp pops from the left end. Result: Pack(value, nonEmpty).
type PopLeftOp struct {
	D *Deque
}

// PushRightOp pushes at the right end. Result: PackBool(true).
type PushRightOp struct {
	D   *Deque
	Val uint64
}

// PopRightOp pops from the right end. Result: Pack(value, nonEmpty).
type PopRightOp struct {
	D *Deque
}

var (
	_ engine.Op = PushLeftOp{}
	_ engine.Op = PopLeftOp{}
	_ engine.Op = PushRightOp{}
	_ engine.Op = PopRightOp{}
)

// Apply implements engine.Op.
func (o PushLeftOp) Apply(ctx memsim.Ctx) uint64 {
	o.D.PushLeft(ctx, o.Val)
	return engine.PackBool(true)
}

// Apply implements engine.Op.
func (o PopLeftOp) Apply(ctx memsim.Ctx) uint64 {
	v, ok := o.D.PopLeft(ctx)
	return engine.Pack(v, ok)
}

// Apply implements engine.Op.
func (o PushRightOp) Apply(ctx memsim.Ctx) uint64 {
	o.D.PushRight(ctx, o.Val)
	return engine.PackBool(true)
}

// Apply implements engine.Op.
func (o PopRightOp) Apply(ctx memsim.Ctx) uint64 {
	v, ok := o.D.PopRight(ctx)
	return engine.Pack(v, ok)
}

// Class implements engine.Op.
func (o PushLeftOp) Class() int { return ClassLeft }

// Class implements engine.Op.
func (o PopLeftOp) Class() int { return ClassLeft }

// Class implements engine.Op.
func (o PushRightOp) Class() int { return ClassRight }

// Class implements engine.Op.
func (o PopRightOp) Class() int { return ClassRight }

// combineEnd combines one end's pushes and pops: concurrent push/pop pairs
// eliminate (the pop returns the pushed value without touching the deque),
// surplus pops execute against the deque, and surplus pushes are spliced in
// with a single PushN.
func combineEnd(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool, left bool) {
	var d *Deque
	type push struct {
		idx int
		val uint64
	}
	var pending []push
	for i, op := range ops {
		if done[i] {
			continue
		}
		switch o := op.(type) {
		case PushLeftOp:
			d = o.D
			pending = append(pending, push{i, o.Val})
		case PushRightOp:
			d = o.D
			pending = append(pending, push{i, o.Val})
		case PopLeftOp, PopRightOp:
			if p, ok := op.(PopLeftOp); ok {
				d = p.D
			} else {
				d = op.(PopRightOp).D
			}
			if n := len(pending); n > 0 {
				// Eliminate against the most recent unmatched push.
				p := pending[n-1]
				pending = pending[:n-1]
				res[p.idx] = engine.PackBool(true)
				done[p.idx] = true
				res[i] = engine.Pack(p.val, true)
				done[i] = true
				continue
			}
			var v uint64
			var ok bool
			if left {
				v, ok = d.PopLeft(ctx)
			} else {
				v, ok = d.PopRight(ctx)
			}
			res[i] = engine.Pack(v, ok)
			done[i] = true
		default:
			res[i] = op.Apply(ctx)
			done[i] = true
		}
	}
	if len(pending) == 0 {
		return
	}
	vals := make([]uint64, len(pending))
	for j, p := range pending {
		vals[j] = p.val
		res[p.idx] = engine.PackBool(true)
		done[p.idx] = true
	}
	if left {
		d.PushLeftN(ctx, vals)
	} else {
		d.PushRightN(ctx, vals)
	}
}

// CombineLeft is the RunMulti for the left-end publication array.
func CombineLeft(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	combineEnd(ctx, ops, res, done, true)
}

// CombineRight is the RunMulti for the right-end publication array.
func CombineRight(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	combineEnd(ctx, ops, res, done, false)
}

// Policies returns the deque HCF configuration: two publication arrays, one
// per end, with per-end combining and elimination. Use it together with
// Config.HoldSelectionLock — the paper's specialized variant was created
// for exactly this shape (§2.4).
func Policies() []core.Policy {
	out := make([]core.Policy, NumClasses)
	out[ClassLeft] = core.Policy{
		Name:               "left",
		PubArray:           0,
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		ShouldHelp:         engine.HelpAll,
		RunMulti:           CombineLeft,
		MaxBatch:           8,
	}
	out[ClassRight] = core.Policy{
		Name:               "right",
		PubArray:           1,
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		ShouldHelp:         engine.HelpAll,
		RunMulti:           CombineRight,
		MaxBatch:           8,
	}
	return out
}

// CombineMixed is the combining function for the FC baseline, which sees
// both ends' operations in one batch: left ops are combined first, then
// right ops.
func CombineMixed(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	// Partition by end, preserving order within each end.
	leftOps := make([]bool, len(ops))
	anyLeft, anyRight := false, false
	for i, op := range ops {
		if done[i] {
			continue
		}
		switch op.(type) {
		case PushLeftOp, PopLeftOp:
			leftOps[i] = true
			anyLeft = true
		default:
			anyRight = true
		}
	}
	if anyLeft {
		masked := make([]bool, len(ops))
		copy(masked, done)
		for i := range ops {
			if !leftOps[i] {
				masked[i] = true // hide right ops from the left pass
			}
		}
		combineEnd(ctx, ops, res, masked, true)
		for i := range ops {
			if leftOps[i] {
				done[i] = masked[i]
			}
		}
	}
	if anyRight {
		combineEnd(ctx, ops, res, done, false)
	}
}
