// Package hashtable implements the sequential hash table evaluated in §3.3
// of the paper: a fixed number of buckets, each a singly linked list of
// key-value nodes, plus a doubly linked "table list" threading all pairs to
// support efficient iteration.
//
// The structure is written as sequential code against memsim.Ctx, so it runs
// unmodified under a lock, inside hardware transactions, or through any of
// the synchronization engines. Its operation mix is the paper's motivating
// case for HCF: Find and Remove rarely conflict (Remove unlinks from random
// positions of the table list without touching its head), while every
// Insert writes the table-list head — so Inserts conflict with each other
// and benefit from combining via InsertN, which chains new nodes and
// splices them with a single head update.
package hashtable

import "hcf/internal/memsim"

// Node layout (one cache line per node to avoid false sharing between
// unrelated keys, like a size-classed allocator would give):
//
//	word 0: key
//	word 1: value
//	word 2: next node in bucket chain (0 = none)
//	word 3: previous node in table list (0 = head)
//	word 4: next node in table list (0 = tail)
const (
	offKey      = 0
	offVal      = 1
	offBucket   = 2
	offListPrev = 3
	offListNext = 4
	nodeWords   = memsim.WordsPerLine
)

// Table is a sequential hash table over simulated memory.
type Table struct {
	buckets  memsim.Addr // array of nbuckets head pointers
	listHead memsim.Addr // head of the table list (its own line)
	nbuckets uint64
}

// New builds a table with nbuckets buckets (rounded up to a power of two)
// using ctx for initialization.
func New(ctx memsim.Ctx, nbuckets int) *Table {
	n := uint64(1)
	for n < uint64(nbuckets) {
		n <<= 1
	}
	t := &Table{
		buckets:  ctx.Alloc(int(n)),
		listHead: ctx.Alloc(memsim.WordsPerLine),
		nbuckets: n,
	}
	for i := uint64(0); i < n; i++ {
		ctx.Store(t.buckets+memsim.Addr(i), 0)
	}
	ctx.Store(t.listHead, 0)
	return t
}

// hash mixes the key (Fibonacci hashing) into a bucket index.
func (t *Table) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & (t.nbuckets - 1)
}

func (t *Table) bucketAddr(key uint64) memsim.Addr {
	return t.buckets + memsim.Addr(t.hash(key))
}

// findNode returns the node holding key, or 0.
func (t *Table) findNode(ctx memsim.Ctx, key uint64) memsim.Addr {
	n := memsim.Addr(ctx.Load(t.bucketAddr(key)))
	for n != 0 {
		if ctx.Load(n+offKey) == key {
			return n
		}
		n = memsim.Addr(ctx.Load(n + offBucket))
	}
	return 0
}

// Find returns the value stored under key.
func (t *Table) Find(ctx memsim.Ctx, key uint64) (uint64, bool) {
	n := t.findNode(ctx, key)
	if n == 0 {
		return 0, false
	}
	return ctx.Load(n + offVal), true
}

// Insert stores (key, value). It returns true if the key was newly
// inserted, false if an existing key's value was updated.
func (t *Table) Insert(ctx memsim.Ctx, key, value uint64) bool {
	if n := t.findNode(ctx, key); n != 0 {
		ctx.Store(n+offVal, value)
		return false
	}
	n := t.newNode(ctx, key, value)
	// Splice into the table list head.
	head := memsim.Addr(ctx.Load(t.listHead))
	ctx.Store(n+offListNext, uint64(head))
	if head != 0 {
		ctx.Store(head+offListPrev, uint64(n))
	}
	ctx.Store(t.listHead, uint64(n))
	return true
}

// newNode allocates a node linked into its bucket chain but not yet into
// the table list.
func (t *Table) newNode(ctx memsim.Ctx, key, value uint64) memsim.Addr {
	n := ctx.Alloc(nodeWords)
	b := t.bucketAddr(key)
	ctx.Store(n+offKey, key)
	ctx.Store(n+offVal, value)
	ctx.Store(n+offBucket, ctx.Load(b))
	ctx.Store(n+offListPrev, 0)
	ctx.Store(n+offListNext, 0)
	ctx.Store(b, uint64(n))
	return n
}

// InsertN applies a batch of inserts, combining the table-list splices of
// all newly created nodes into a single head update (the paper's Insert-n:
// "its ability to chain new key-value pairs ... with just one modification
// of the head pointer"). results[i] reports whether pair i was a new
// insertion. Duplicate keys within the batch behave exactly as sequential
// Inserts.
func (t *Table) InsertN(ctx memsim.Ctx, keys, values []uint64, results []bool) {
	var chainHead, chainTail memsim.Addr
	for i := range keys {
		if n := t.findNode(ctx, keys[i]); n != 0 {
			ctx.Store(n+offVal, values[i])
			results[i] = false
			continue
		}
		n := t.newNode(ctx, keys[i], values[i])
		results[i] = true
		if chainHead == 0 {
			chainHead, chainTail = n, n
		} else {
			// Prepend, preserving the order sequential Inserts would give
			// (each insert lands at the head, so later inserts precede).
			ctx.Store(n+offListNext, uint64(chainHead))
			ctx.Store(chainHead+offListPrev, uint64(n))
			chainHead = n
		}
	}
	if chainHead == 0 {
		return
	}
	head := memsim.Addr(ctx.Load(t.listHead))
	ctx.Store(chainTail+offListNext, uint64(head))
	if head != 0 {
		ctx.Store(head+offListPrev, uint64(chainTail))
	}
	ctx.Store(t.listHead, uint64(chainHead))
}

// Remove deletes key, returning whether it was present. The node is
// unlinked from both the bucket chain and the table list; note that a
// random key's table-list unlink does not read the list head, which is why
// Removes rarely conflict (§3.3).
func (t *Table) Remove(ctx memsim.Ctx, key uint64) bool {
	b := t.bucketAddr(key)
	prev := memsim.Addr(0)
	n := memsim.Addr(ctx.Load(b))
	for n != 0 {
		if ctx.Load(n+offKey) == key {
			break
		}
		prev = n
		n = memsim.Addr(ctx.Load(n + offBucket))
	}
	if n == 0 {
		return false
	}
	// Unlink from the bucket chain.
	next := ctx.Load(n + offBucket)
	if prev == 0 {
		ctx.Store(b, next)
	} else {
		ctx.Store(prev+offBucket, next)
	}
	// Unlink from the table list.
	lp := memsim.Addr(ctx.Load(n + offListPrev))
	ln := memsim.Addr(ctx.Load(n + offListNext))
	if lp == 0 {
		ctx.Store(t.listHead, uint64(ln))
	} else {
		ctx.Store(lp+offListNext, uint64(ln))
	}
	if ln != 0 {
		ctx.Store(ln+offListPrev, uint64(lp))
	}
	ctx.Free(n, nodeWords)
	return true
}

// Len walks the table list and returns the number of stored pairs.
func (t *Table) Len(ctx memsim.Ctx) int {
	count := 0
	for n := memsim.Addr(ctx.Load(t.listHead)); n != 0; n = memsim.Addr(ctx.Load(n + offListNext)) {
		count++
	}
	return count
}

// Iterate calls fn for every pair in table-list order (most recently
// inserted first) until fn returns false.
func (t *Table) Iterate(ctx memsim.Ctx, fn func(key, value uint64) bool) {
	for n := memsim.Addr(ctx.Load(t.listHead)); n != 0; n = memsim.Addr(ctx.Load(n + offListNext)) {
		if !fn(ctx.Load(n+offKey), ctx.Load(n+offVal)) {
			return
		}
	}
}

// CheckInvariants validates the structural invariants: every bucket node's
// key hashes to its bucket, the table list is consistently doubly linked,
// and the bucket chains and table list contain exactly the same nodes.
// It returns a descriptive error string, or "" when consistent.
func (t *Table) CheckInvariants(ctx memsim.Ctx) string {
	inBuckets := map[memsim.Addr]bool{}
	for i := uint64(0); i < t.nbuckets; i++ {
		for n := memsim.Addr(ctx.Load(t.buckets + memsim.Addr(i))); n != 0; n = memsim.Addr(ctx.Load(n + offBucket)) {
			if inBuckets[n] {
				return "node appears twice in bucket chains"
			}
			inBuckets[n] = true
			if t.hash(ctx.Load(n+offKey)) != i {
				return "node hashed to wrong bucket"
			}
		}
	}
	inList := map[memsim.Addr]bool{}
	prev := memsim.Addr(0)
	for n := memsim.Addr(ctx.Load(t.listHead)); n != 0; n = memsim.Addr(ctx.Load(n + offListNext)) {
		if inList[n] {
			return "cycle in table list"
		}
		inList[n] = true
		if memsim.Addr(ctx.Load(n+offListPrev)) != prev {
			return "table list prev pointer inconsistent"
		}
		prev = n
	}
	if len(inList) != len(inBuckets) {
		return "table list and bucket chains disagree on node set"
	}
	for n := range inList {
		if !inBuckets[n] {
			return "table list node missing from buckets"
		}
	}
	return ""
}
