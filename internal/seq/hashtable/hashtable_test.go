package hashtable

import (
	"math/rand/v2"
	"testing"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
)

func newEnvTable(buckets int) (*memsim.DetEnv, *Table) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	return env, New(env.Boot(), buckets)
}

func TestEmptyTable(t *testing.T) {
	env, tbl := newEnvTable(16)
	boot := env.Boot()
	if _, ok := tbl.Find(boot, 1); ok {
		t.Error("found key in empty table")
	}
	if tbl.Remove(boot, 1) {
		t.Error("removed key from empty table")
	}
	if tbl.Len(boot) != 0 {
		t.Error("empty table has nonzero length")
	}
}

func TestInsertFindRemove(t *testing.T) {
	env, tbl := newEnvTable(16)
	boot := env.Boot()
	if !tbl.Insert(boot, 5, 50) {
		t.Fatal("fresh insert reported update")
	}
	if v, ok := tbl.Find(boot, 5); !ok || v != 50 {
		t.Fatalf("Find(5) = (%d,%v)", v, ok)
	}
	if tbl.Insert(boot, 5, 55) {
		t.Fatal("update reported fresh insert")
	}
	if v, _ := tbl.Find(boot, 5); v != 55 {
		t.Fatalf("value after update = %d", v)
	}
	if !tbl.Remove(boot, 5) {
		t.Fatal("remove of present key failed")
	}
	if _, ok := tbl.Find(boot, 5); ok {
		t.Fatal("key present after removal")
	}
	if tbl.Remove(boot, 5) {
		t.Fatal("double remove succeeded")
	}
}

func TestCollidingKeysCoexist(t *testing.T) {
	// With 1 bucket every key collides; chains must still work.
	env, tbl := newEnvTable(1)
	boot := env.Boot()
	for k := uint64(0); k < 50; k++ {
		tbl.Insert(boot, k, k*10)
	}
	for k := uint64(0); k < 50; k++ {
		if v, ok := tbl.Find(boot, k); !ok || v != k*10 {
			t.Fatalf("Find(%d) = (%d,%v)", k, v, ok)
		}
	}
	for k := uint64(0); k < 50; k += 2 {
		if !tbl.Remove(boot, k) {
			t.Fatalf("Remove(%d) failed", k)
		}
	}
	for k := uint64(0); k < 50; k++ {
		_, ok := tbl.Find(boot, k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("after removals Find(%d) = %v, want %v", k, ok, want)
		}
	}
	if msg := tbl.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}

func TestIterateOrderMostRecentFirst(t *testing.T) {
	env, tbl := newEnvTable(16)
	boot := env.Boot()
	for k := uint64(1); k <= 3; k++ {
		tbl.Insert(boot, k, k)
	}
	var order []uint64
	tbl.Iterate(boot, func(k, v uint64) bool {
		order = append(order, k)
		return true
	})
	if len(order) != 3 || order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("iteration order = %v, want [3 2 1]", order)
	}
}

func TestIterateEarlyStop(t *testing.T) {
	env, tbl := newEnvTable(16)
	boot := env.Boot()
	for k := uint64(1); k <= 10; k++ {
		tbl.Insert(boot, k, k)
	}
	count := 0
	tbl.Iterate(boot, func(k, v uint64) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("visited %d entries, want 4", count)
	}
}

func TestRemoveListPositions(t *testing.T) {
	// Remove the table-list head, middle and tail and verify consistency.
	env, tbl := newEnvTable(16)
	boot := env.Boot()
	for k := uint64(1); k <= 5; k++ {
		tbl.Insert(boot, k, k)
	}
	// list order: 5 4 3 2 1 (head..tail)
	for _, k := range []uint64{5, 3, 1} { // head, middle, tail
		if !tbl.Remove(boot, k) {
			t.Fatalf("Remove(%d) failed", k)
		}
		if msg := tbl.CheckInvariants(boot); msg != "" {
			t.Fatalf("after Remove(%d): %s", k, msg)
		}
	}
	if got := tbl.Len(boot); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	env, tbl := newEnvTable(64)
	boot := env.Boot()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 5000; i++ {
		key := rng.Uint64N(200)
		switch rng.IntN(3) {
		case 0:
			val := rng.Uint64N(1 << 30)
			_, existed := model[key]
			if got := tbl.Insert(boot, key, val); got != !existed {
				t.Fatalf("Insert(%d) returned %v, model says %v", key, got, !existed)
			}
			model[key] = val
		case 1:
			v, ok := tbl.Find(boot, key)
			mv, mok := model[key]
			if ok != mok || (ok && v != mv) {
				t.Fatalf("Find(%d) = (%d,%v), model (%d,%v)", key, v, ok, mv, mok)
			}
		case 2:
			_, existed := model[key]
			if got := tbl.Remove(boot, key); got != existed {
				t.Fatalf("Remove(%d) returned %v, model says %v", key, got, existed)
			}
			delete(model, key)
		}
	}
	if got := tbl.Len(boot); got != len(model) {
		t.Fatalf("Len = %d, model has %d", got, len(model))
	}
	if msg := tbl.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}

func TestInsertNMatchesSequentialInserts(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 50; trial++ {
		envA, a := newEnvTable(8)
		envB, b := newEnvTable(8)
		bootA, bootB := envA.Boot(), envB.Boot()
		// Random prefill.
		n := rng.IntN(20)
		for i := 0; i < n; i++ {
			k := rng.Uint64N(30)
			a.Insert(bootA, k, k)
			b.Insert(bootB, k, k)
		}
		// Batch with possible duplicates.
		batch := 1 + rng.IntN(10)
		keys := make([]uint64, batch)
		vals := make([]uint64, batch)
		want := make([]bool, batch)
		for i := range keys {
			keys[i] = rng.Uint64N(30)
			vals[i] = rng.Uint64N(1000)
			want[i] = a.Insert(bootA, keys[i], vals[i])
		}
		got := make([]bool, batch)
		b.InsertN(bootB, keys, vals, got)
		for i := range keys {
			if got[i] != want[i] {
				t.Fatalf("trial %d: InsertN result[%d] = %v, sequential = %v",
					trial, i, got[i], want[i])
			}
		}
		// Same contents and same table-list order.
		var seqOrder, batchOrder []uint64
		a.Iterate(bootA, func(k, v uint64) bool { seqOrder = append(seqOrder, k, v); return true })
		b.Iterate(bootB, func(k, v uint64) bool { batchOrder = append(batchOrder, k, v); return true })
		if len(seqOrder) != len(batchOrder) {
			t.Fatalf("trial %d: lengths differ: %v vs %v", trial, seqOrder, batchOrder)
		}
		for i := range seqOrder {
			if seqOrder[i] != batchOrder[i] {
				t.Fatalf("trial %d: order differs at %d: %v vs %v", trial, i, seqOrder, batchOrder)
			}
		}
		if msg := b.CheckInvariants(bootB); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
	}
}

// buildEngines constructs all six engines for a fresh table in env.
func buildEngines(t *testing.T, env memsim.Env, tbl *Table) map[string]engine.Engine {
	t.Helper()
	hcf, err := core.New(env, core.Config{Policies: Policies()})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() engines.Options { return engines.Options{Combine: CombineMixed} }
	return map[string]engine.Engine{
		"Lock":   engines.NewLock(env, mk()),
		"TLE":    engines.NewTLE(env, mk()),
		"FC":     engines.NewFC(env, mk()),
		"SCM":    engines.NewSCM(env, mk()),
		"TLE+FC": engines.NewTLEFC(env, mk()),
		"HCF":    hcf,
	}
}

// TestConcurrentConformanceAllEngines runs a mixed workload on every engine
// and checks conservation (inserts succeeded - removes succeeded == final
// size) plus structural invariants.
func TestConcurrentConformanceAllEngines(t *testing.T) {
	const threads, perThread = 8, 60
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			tbl := New(env.Boot(), 64)
			eng := buildEngines(t, env, tbl)[name]
			inserted := make([]int, threads)
			removed := make([]int, threads)
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 42))
				for i := 0; i < perThread; i++ {
					key := rng.Uint64N(100)
					switch rng.IntN(3) {
					case 0:
						if engine.UnpackBool(eng.Execute(th, InsertOp{T: tbl, Key: key, Val: key})) {
							inserted[th.ID()]++
						}
					case 1:
						eng.Execute(th, FindOp{T: tbl, Key: key})
					case 2:
						if engine.UnpackBool(eng.Execute(th, RemoveOp{T: tbl, Key: key})) {
							removed[th.ID()]++
						}
					}
				}
			})
			boot := env.Boot()
			if msg := tbl.CheckInvariants(boot); msg != "" {
				t.Fatal(msg)
			}
			totalIns, totalRem := 0, 0
			for i := 0; i < threads; i++ {
				totalIns += inserted[i]
				totalRem += removed[i]
			}
			if got := tbl.Len(boot); got != totalIns-totalRem {
				t.Fatalf("size = %d, want %d inserted - %d removed = %d",
					got, totalIns, totalRem, totalIns-totalRem)
			}
			if m := eng.Metrics(); m.Ops != threads*perThread {
				t.Fatalf("ops = %d, want %d", m.Ops, threads*perThread)
			}
		})
	}
}

// TestDisjointKeyRangesExactState gives each thread a private key range so
// the final table state is exactly predictable under any engine.
func TestDisjointKeyRangesExactState(t *testing.T) {
	const threads = 6
	for _, name := range []string{"TLE", "HCF", "FC"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			tbl := New(env.Boot(), 64)
			eng := buildEngines(t, env, tbl)[name]
			env.Run(func(th *memsim.Thread) {
				base := uint64(th.ID()) * 1000
				for k := uint64(0); k < 20; k++ {
					eng.Execute(th, InsertOp{T: tbl, Key: base + k, Val: k})
				}
				for k := uint64(0); k < 20; k += 2 {
					eng.Execute(th, RemoveOp{T: tbl, Key: base + k})
				}
			})
			boot := env.Boot()
			for tid := 0; tid < threads; tid++ {
				base := uint64(tid) * 1000
				for k := uint64(0); k < 20; k++ {
					v, ok := tbl.Find(boot, base+k)
					wantPresent := k%2 == 1
					if ok != wantPresent {
						t.Fatalf("key %d present=%v want %v", base+k, ok, wantPresent)
					}
					if ok && v != k {
						t.Fatalf("key %d value=%d want %d", base+k, v, k)
					}
				}
			}
		})
	}
}

func TestHCFPhaseSplitMatchesPaperSetup(t *testing.T) {
	// Finds/Removes must never complete in TryVisible/TryCombining (their
	// policy skips those phases), while contended Inserts should reach the
	// combining phases.
	const threads = 12
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	tbl := New(env.Boot(), 16)
	hcf, err := core.New(env, core.Config{Policies: Policies()})
	if err != nil {
		t.Fatal(err)
	}
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), 7))
		for i := 0; i < 60; i++ {
			key := rng.Uint64N(50)
			if i%2 == 0 {
				hcf.Execute(th, InsertOp{T: tbl, Key: key, Val: 1})
			} else {
				hcf.Execute(th, FindOp{T: tbl, Key: key})
			}
		}
	})
	bd := hcf.PhaseBreakdown()
	if bd[ClassFind][core.PhaseTryVisible] != 0 || bd[ClassFind][core.PhaseTryCombining] != 0 {
		t.Fatalf("find completed in skipped phases: %v", bd[ClassFind])
	}
	insTotal := uint64(0)
	for _, c := range bd[ClassInsert] {
		insTotal += c
	}
	if insTotal != threads*30 {
		t.Fatalf("insert completions = %d, want %d", insTotal, threads*30)
	}
}

func TestSumOpSequential(t *testing.T) {
	env, tbl := newEnvTable(32)
	boot := env.Boot()
	var want uint64
	for k := uint64(1); k <= 20; k++ {
		tbl.Insert(boot, k, k*10)
		want += k * 10
	}
	got, ok := engine.Unpack(SumOp{T: tbl}.Apply(boot))
	if !ok || got != want {
		t.Fatalf("Sum = (%d,%v), want %d", got, ok, want)
	}
}

// TestSumOpConcurrentWithUpdates runs whole-table scans concurrently with
// updates under HCF: each scan must return an atomic snapshot sum, i.e. a
// value that equals total-inserted-minus-removed at some instant. We use
// insert-only updates of constant value so the sum is v * (size at some
// instant) and sizes are monotonically non-decreasing.
func TestSumOpConcurrentWithUpdates(t *testing.T) {
	const threads = 6
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	tbl := New(env.Boot(), 64)
	hcf, err := core.New(env, core.Config{Policies: Policies()})
	if err != nil {
		t.Fatal(err)
	}
	sums := make([][]uint64, threads)
	env.Run(func(th *memsim.Thread) {
		if th.ID() == 0 {
			for i := 0; i < 15; i++ {
				s, _ := engine.Unpack(hcf.Execute(th, SumOp{T: tbl}))
				sums[0] = append(sums[0], s)
			}
			return
		}
		base := uint64(th.ID()) * 1000
		for i := uint64(0); i < 40; i++ {
			hcf.Execute(th, InsertOp{T: tbl, Key: base + i, Val: 1})
		}
	})
	boot := env.Boot()
	finalSize := uint64(tbl.Len(boot))
	prev := uint64(0)
	for i, s := range sums[0] {
		if s > finalSize {
			t.Fatalf("scan %d saw impossible sum %d (> final size %d)", i, s, finalSize)
		}
		if s < prev {
			t.Fatalf("scan %d went backwards: %d after %d (non-atomic snapshot)", i, s, prev)
		}
		prev = s
	}
	if msg := tbl.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}
