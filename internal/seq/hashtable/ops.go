package hashtable

import (
	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/route"
)

// Operation classes. Find and Remove share a publication array and a
// TLE-like policy; Insert gets its own array and the full four-phase
// treatment (§3.3).
const (
	ClassFind = iota
	ClassInsert
	ClassRemove
	// NumClasses is the number of operation classes.
	NumClasses
)

// FindOp looks up a key. Result: Pack(value, found).
type FindOp struct {
	T   *Table
	Key uint64
}

var _ engine.Op = FindOp{}

// Apply implements engine.Op.
func (o FindOp) Apply(ctx memsim.Ctx) uint64 {
	v, ok := o.T.Find(ctx, o.Key)
	return engine.Pack(v, ok)
}

// Class implements engine.Op.
func (o FindOp) Class() int { return ClassFind }

// InsertOp stores a pair. Result: PackBool(newly inserted).
type InsertOp struct {
	T   *Table
	Key uint64
	Val uint64
}

var _ engine.Op = InsertOp{}

// Apply implements engine.Op.
func (o InsertOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.T.Insert(ctx, o.Key, o.Val))
}

// Class implements engine.Op.
func (o InsertOp) Class() int { return ClassInsert }

// SumOp iterates the whole table through the table list (the reason the
// list exists, §3.3) and returns the sum of all values modulo 2^63. Its
// read set spans the entire structure, so under load it typically exceeds
// HTM capacity and drains through the combining phases — a realistic
// "analytics scan" stressor. Result: Pack(sum mod 2^63, true).
type SumOp struct {
	T *Table
}

var _ engine.Op = SumOp{}

// Apply implements engine.Op.
func (o SumOp) Apply(ctx memsim.Ctx) uint64 {
	var sum uint64
	o.T.Iterate(ctx, func(k, v uint64) bool {
		sum += v
		return true
	})
	return engine.Pack(sum&((1<<63)-1), true)
}

// Class implements engine.Op: scans share the Find/Remove array.
func (o SumOp) Class() int { return ClassFind }

// SumAllOp sums every value across a set of tables (a sharded structure's
// whole-structure scan). Its read set spans all shards, so a sharded engine
// must route it CrossShard onto the all-locks path. Result: Pack(sum mod
// 2^63, true).
type SumAllOp struct {
	Tables []*Table
}

var _ engine.Op = SumAllOp{}

// Apply implements engine.Op.
func (o SumAllOp) Apply(ctx memsim.Ctx) uint64 {
	var sum uint64
	for _, t := range o.Tables {
		t.Iterate(ctx, func(k, v uint64) bool {
			sum += v
			return true
		})
	}
	return engine.Pack(sum&((1<<63)-1), true)
}

// Class implements engine.Op: scans share the Find/Remove array.
func (o SumAllOp) Class() int { return ClassFind }

// RemoveOp deletes a key. Result: PackBool(was present).
type RemoveOp struct {
	T   *Table
	Key uint64
}

var _ engine.Op = RemoveOp{}

// Apply implements engine.Op.
func (o RemoveOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.T.Remove(ctx, o.Key))
}

// Class implements engine.Op.
func (o RemoveOp) Class() int { return ClassRemove }

// RouteKey is the shard.KeyFunc for hash-table operations: single-key
// operations route by their key; whole-structure scans (SumOp,
// SumAllOp) and anything unrecognized report ok=false and run on a
// sharded engine's cross-shard all-locks path. This is the one routing
// extractor shared by every sharded hash-table consumer (harness,
// examples, fuzzer) — the four hand-written mod-N closures it replaced
// each re-derived it.
func RouteKey(op engine.Op) (uint64, bool) {
	switch o := op.(type) {
	case FindOp:
		return o.Key, true
	case InsertOp:
		return o.Key, true
	case RemoveOp:
		return o.Key, true
	}
	return 0, false
}

// BindTable returns op bound to table t. It is the shard.Elastic Bind
// hook for hash-table ops: single-key operations are rebound to the
// table of whatever shard owns their key at apply time; other ops pass
// through unchanged.
func BindTable(op engine.Op, t *Table) engine.Op {
	switch o := op.(type) {
	case FindOp:
		o.T = t
		return o
	case InsertOp:
		o.T = t
		return o
	case RemoveOp:
		o.T = t
		return o
	}
	return op
}

// MigrateTables is the resharding mover for a ring-partitioned set of
// tables (one per shard): every key in tables[from] that the next ring
// routes elsewhere is removed and re-inserted into its new owner's
// table, and the number of keys moved is returned. It is plain
// sequential code — callers (shard.Elastic's MigrateFunc) run it while
// holding every shard's data-structure lock, making the whole move one
// linearizable step.
func MigrateTables(ctx memsim.Ctx, tables []*Table, from int, next *route.Ring) int {
	var keys, vals []uint64
	tables[from].Iterate(ctx, func(k, v uint64) bool {
		if next.Owner(k) != from {
			keys = append(keys, k)
			vals = append(vals, v)
		}
		return true
	})
	for i, k := range keys {
		tables[from].Remove(ctx, k)
		tables[next.Owner(k)].Insert(ctx, k, vals[i])
	}
	return len(keys)
}

// CombineInserts is the RunMulti for the Insert publication array: all
// pending inserts are applied through InsertN, chaining their table-list
// splices into one head update. A batch may span tables (a sharded
// structure combined by a single framework): each table gets its own
// InsertN over its own operations, preserving in-batch order per table —
// inserts on different tables touch disjoint memory and commute.
func CombineInserts(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	var (
		table   *Table
		tables  []*Table
		multi   bool
		keys    []uint64
		values  []uint64
		indices []int
	)
	for i, op := range ops {
		if done[i] {
			continue
		}
		ins, ok := op.(InsertOp)
		if !ok {
			// Foreign op type in the batch (possible for FC, which mixes
			// classes): run it directly.
			res[i] = op.Apply(ctx)
			done[i] = true
			continue
		}
		if table != nil && ins.T != table {
			multi = true
		}
		table = ins.T
		tables = append(tables, ins.T)
		keys = append(keys, ins.Key)
		values = append(values, ins.Val)
		indices = append(indices, i)
	}
	if table == nil {
		return
	}
	if !multi {
		results := make([]bool, len(keys))
		table.InsertN(ctx, keys, values, results)
		for j, i := range indices {
			res[i] = engine.PackBool(results[j])
			done[i] = true
		}
		return
	}
	// Batch spans tables: peel off one table's operations at a time, in
	// first-appearance order.
	for len(indices) > 0 {
		t := tables[0]
		var ks, vs []uint64
		var idx []int
		var rt []*Table
		var rk, rv []uint64
		var ri []int
		for j := range indices {
			if tables[j] == t {
				ks = append(ks, keys[j])
				vs = append(vs, values[j])
				idx = append(idx, indices[j])
			} else {
				rt = append(rt, tables[j])
				rk = append(rk, keys[j])
				rv = append(rv, values[j])
				ri = append(ri, indices[j])
			}
		}
		results := make([]bool, len(ks))
		t.InsertN(ctx, ks, vs, results)
		for j, i := range idx {
			res[i] = engine.PackBool(results[j])
			done[i] = true
		}
		tables, keys, values, indices = rt, rk, rv, ri
	}
}

// Policies returns the paper's HCF configuration for the hash table
// (§3.3): Find and Remove behave like TLE on publication array 0 (all ten
// speculation attempts private, straight to the lock afterwards), Insert
// uses array 1 with the 2/3/5 trial split and InsertN combining.
func Policies() []core.Policy {
	tleLike := func(name string) core.Policy {
		return core.Policy{
			Name:             name,
			PubArray:         0,
			TryPrivateTrials: 10,
			ShouldHelp:       engine.HelpNone,
		}
	}
	find := tleLike("find")
	remove := tleLike("remove")
	insert := core.Policy{
		Name:               "insert",
		PubArray:           1,
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		ShouldHelp:         engine.HelpAll,
		RunMulti:           CombineInserts,
		MaxBatch:           8,
	}
	out := make([]core.Policy, NumClasses)
	out[ClassFind] = find
	out[ClassInsert] = insert
	out[ClassRemove] = remove
	return out
}

// CombineMixed is the combining function for the FC and TLE+FC baselines:
// announced Inserts are combined with InsertN while Finds and Removes are
// applied sequentially afterwards (the paper's FC variant, §3.3).
func CombineMixed(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	CombineInserts(ctx, ops, res, done)
	engine.ApplyEach(ctx, ops, res, done)
}
