package queue

import (
	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
)

// Operation classes: enqueues and dequeues conflict only within their own
// end, so each gets its own publication array and combiner.
const (
	ClassEnqueue = iota
	ClassDequeue
	// NumClasses is the number of operation classes.
	NumClasses
)

// EnqueueOp appends a value. Result: PackBool(true).
type EnqueueOp struct {
	Q   *Queue
	Val uint64
}

// DequeueOp removes the oldest value. Result: Pack(value, nonEmpty).
type DequeueOp struct {
	Q *Queue
}

var (
	_ engine.Op = EnqueueOp{}
	_ engine.Op = DequeueOp{}
)

// Apply implements engine.Op.
func (o EnqueueOp) Apply(ctx memsim.Ctx) uint64 {
	o.Q.Enqueue(ctx, o.Val)
	return engine.PackBool(true)
}

// Apply implements engine.Op.
func (o DequeueOp) Apply(ctx memsim.Ctx) uint64 {
	v, ok := o.Q.Dequeue(ctx)
	return engine.Pack(v, ok)
}

// Class implements engine.Op.
func (o EnqueueOp) Class() int { return ClassEnqueue }

// Class implements engine.Op.
func (o DequeueOp) Class() int { return ClassDequeue }

// CombineEnqueues splices all pending enqueues with a single tail update.
// Operations of other kinds are left undone (CombineMixed composes the two
// per-kind combiners for the FC baseline's mixed batches).
func CombineEnqueues(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	var q *Queue
	var vals []uint64
	var idx []int
	for i, op := range ops {
		if done[i] {
			continue
		}
		e, ok := op.(EnqueueOp)
		if !ok {
			continue
		}
		q = e.Q
		vals = append(vals, e.Val)
		idx = append(idx, i)
	}
	if q == nil {
		return
	}
	q.EnqueueN(ctx, vals)
	for _, i := range idx {
		res[i] = engine.PackBool(true)
		done[i] = true
	}
}

// CombineDequeues serves all pending dequeues from one DequeueN pass; the
// i-th pending dequeue receives the i-th oldest value.
func CombineDequeues(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	var q *Queue
	var idx []int
	for i, op := range ops {
		if done[i] {
			continue
		}
		d, ok := op.(DequeueOp)
		if !ok {
			continue
		}
		q = d.Q
		idx = append(idx, i)
	}
	if q == nil {
		return
	}
	vals, n := q.DequeueN(ctx, len(idx), nil)
	for j, i := range idx {
		if j < n {
			res[i] = engine.Pack(vals[j], true)
		} else {
			res[i] = engine.Pack(0, false)
		}
		done[i] = true
	}
}

// Policies returns the queue HCF configuration: one publication array per
// end, chain-splicing combiners, standard 2/3/5 budgets.
func Policies() []core.Policy {
	out := make([]core.Policy, NumClasses)
	out[ClassEnqueue] = core.Policy{
		Name:               "enqueue",
		PubArray:           0,
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		ShouldHelp:         engine.HelpAll,
		RunMulti:           CombineEnqueues,
		MaxBatch:           16,
	}
	out[ClassDequeue] = core.Policy{
		Name:               "dequeue",
		PubArray:           1,
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		ShouldHelp:         engine.HelpAll,
		RunMulti:           CombineDequeues,
		MaxBatch:           16,
	}
	return out
}

// CombineMixed is the combining function for the FC baseline: enqueues are
// spliced first, then dequeues are served (so a dequeue in the batch can
// observe the batch's enqueues, matching the replay order used by the
// linearizability witness when enqueues rank first).
func CombineMixed(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	CombineEnqueues(ctx, ops, res, done)
	CombineDequeues(ctx, ops, res, done)
	engine.ApplyEach(ctx, ops, res, done) // any foreign op kinds
}
