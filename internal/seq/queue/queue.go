// Package queue implements a sequential FIFO queue — with stacks, the
// structure flat combining was originally shown to dominate on [Hendler et
// al., cited as [11]]. Enqueues conflict only with enqueues (the tail) and
// dequeues only with dequeues (the head), so the HCF configuration gives
// each end its own publication array with chain-splicing combined variants
// (EnqueueN / DequeueN), while the two combiners run concurrently with
// each other.
package queue

import "hcf/internal/memsim"

// Node layout: word 0 value, word 1 next. Padded to a line.
const (
	offVal    = 0
	offNext   = 1
	nodeWords = memsim.WordsPerLine
)

// Queue is a sequential FIFO queue over simulated memory. The head and
// tail pointers live on separate cache lines so the two ends do not
// false-share.
type Queue struct {
	head memsim.Addr // first node (0 = empty)
	tail memsim.Addr // last node (0 = empty)
}

// New builds an empty queue using ctx.
func New(ctx memsim.Ctx) *Queue {
	q := &Queue{
		head: ctx.Alloc(memsim.WordsPerLine),
		tail: ctx.Alloc(memsim.WordsPerLine),
	}
	ctx.Store(q.head, 0)
	ctx.Store(q.tail, 0)
	return q
}

// Enqueue appends value.
func (q *Queue) Enqueue(ctx memsim.Ctx, value uint64) {
	n := ctx.Alloc(nodeWords)
	ctx.Store(n+offVal, value)
	ctx.Store(n+offNext, 0)
	tail := memsim.Addr(ctx.Load(q.tail))
	if tail == 0 {
		ctx.Store(q.head, uint64(n))
	} else {
		ctx.Store(tail+offNext, uint64(n))
	}
	ctx.Store(q.tail, uint64(n))
}

// Dequeue removes and returns the oldest value.
func (q *Queue) Dequeue(ctx memsim.Ctx) (uint64, bool) {
	n := memsim.Addr(ctx.Load(q.head))
	if n == 0 {
		return 0, false
	}
	v := ctx.Load(n + offVal)
	next := ctx.Load(n + offNext)
	ctx.Store(q.head, next)
	if next == 0 {
		ctx.Store(q.tail, 0)
	}
	ctx.Free(n, nodeWords)
	return v, true
}

// EnqueueN appends values in order with a single tail-pointer update — the
// combined enqueue.
func (q *Queue) EnqueueN(ctx memsim.Ctx, values []uint64) {
	if len(values) == 0 {
		return
	}
	var first, last memsim.Addr
	for _, v := range values {
		n := ctx.Alloc(nodeWords)
		ctx.Store(n+offVal, v)
		ctx.Store(n+offNext, 0)
		if first == 0 {
			first, last = n, n
			continue
		}
		ctx.Store(last+offNext, uint64(n))
		last = n
	}
	tail := memsim.Addr(ctx.Load(q.tail))
	if tail == 0 {
		ctx.Store(q.head, uint64(first))
	} else {
		ctx.Store(tail+offNext, uint64(first))
	}
	ctx.Store(q.tail, uint64(last))
}

// DequeueN removes up to n oldest values in one pass, appending them to
// out — the combined dequeue.
func (q *Queue) DequeueN(ctx memsim.Ctx, n int, out []uint64) ([]uint64, int) {
	count := 0
	node := memsim.Addr(ctx.Load(q.head))
	for node != 0 && count < n {
		out = append(out, ctx.Load(node+offVal))
		next := memsim.Addr(ctx.Load(node + offNext))
		ctx.Free(node, nodeWords)
		node = next
		count++
	}
	if count == 0 {
		return out, 0
	}
	ctx.Store(q.head, uint64(node))
	if node == 0 {
		ctx.Store(q.tail, 0)
	}
	return out, count
}

// Len returns the number of stored values.
func (q *Queue) Len(ctx memsim.Ctx) int {
	count := 0
	for n := memsim.Addr(ctx.Load(q.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		count++
	}
	return count
}

// Items appends the values oldest-first to dst.
func (q *Queue) Items(ctx memsim.Ctx, dst []uint64) []uint64 {
	for n := memsim.Addr(ctx.Load(q.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		dst = append(dst, ctx.Load(n+offVal))
	}
	return dst
}

// CheckInvariants verifies head/tail consistency. Returns "" when
// consistent.
func (q *Queue) CheckInvariants(ctx memsim.Ctx) string {
	head := memsim.Addr(ctx.Load(q.head))
	tail := memsim.Addr(ctx.Load(q.tail))
	if (head == 0) != (tail == 0) {
		return "head/tail emptiness disagrees"
	}
	if head == 0 {
		return ""
	}
	seen := map[memsim.Addr]bool{}
	last := memsim.Addr(0)
	for n := head; n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		if seen[n] {
			return "cycle in queue"
		}
		seen[n] = true
		last = n
	}
	if last != tail {
		return "tail does not point at the last node"
	}
	return ""
}
