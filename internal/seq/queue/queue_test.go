package queue

import (
	"math/rand/v2"
	"sort"
	"testing"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
)

func newEnvQueue() (*memsim.DetEnv, *Queue) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	return env, New(env.Boot())
}

func TestEmptyQueue(t *testing.T) {
	env, q := newEnvQueue()
	boot := env.Boot()
	if _, ok := q.Dequeue(boot); ok {
		t.Error("dequeue on empty succeeded")
	}
	if q.Len(boot) != 0 {
		t.Error("empty queue nonzero length")
	}
	if msg := q.CheckInvariants(boot); msg != "" {
		t.Error(msg)
	}
}

func TestFIFOOrder(t *testing.T) {
	env, q := newEnvQueue()
	boot := env.Boot()
	for v := uint64(1); v <= 5; v++ {
		q.Enqueue(boot, v)
	}
	for want := uint64(1); want <= 5; want++ {
		v, ok := q.Dequeue(boot)
		if !ok || v != want {
			t.Fatalf("Dequeue = (%d,%v), want %d", v, ok, want)
		}
	}
	if _, ok := q.Dequeue(boot); ok {
		t.Fatal("queue should be empty")
	}
	if msg := q.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}

func TestDrainRefill(t *testing.T) {
	env, q := newEnvQueue()
	boot := env.Boot()
	for round := 0; round < 5; round++ {
		for v := uint64(0); v < 10; v++ {
			q.Enqueue(boot, v)
		}
		for v := uint64(0); v < 10; v++ {
			got, ok := q.Dequeue(boot)
			if !ok || got != v {
				t.Fatalf("round %d: Dequeue = (%d,%v), want %d", round, got, ok, v)
			}
		}
		if msg := q.CheckInvariants(boot); msg != "" {
			t.Fatalf("round %d: %s", round, msg)
		}
	}
}

func TestEnqueueNMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 30; trial++ {
		envA, a := newEnvQueue()
		envB, b := newEnvQueue()
		bootA, bootB := envA.Boot(), envB.Boot()
		pre := rng.IntN(4)
		for i := 0; i < pre; i++ {
			a.Enqueue(bootA, uint64(i))
			b.Enqueue(bootB, uint64(i))
		}
		vals := make([]uint64, 1+rng.IntN(6))
		for i := range vals {
			vals[i] = rng.Uint64N(100)
		}
		for _, v := range vals {
			a.Enqueue(bootA, v)
		}
		b.EnqueueN(bootB, vals)
		ia, ib := a.Items(bootA, nil), b.Items(bootB, nil)
		if len(ia) != len(ib) {
			t.Fatalf("trial %d: lengths differ", trial)
		}
		for i := range ia {
			if ia[i] != ib[i] {
				t.Fatalf("trial %d: %v vs %v", trial, ia, ib)
			}
		}
		if msg := b.CheckInvariants(bootB); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
	}
}

func TestDequeueNMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for trial := 0; trial < 30; trial++ {
		envA, a := newEnvQueue()
		envB, b := newEnvQueue()
		bootA, bootB := envA.Boot(), envB.Boot()
		n := rng.IntN(12)
		for i := 0; i < n; i++ {
			v := rng.Uint64N(100)
			a.Enqueue(bootA, v)
			b.Enqueue(bootB, v)
		}
		take := rng.IntN(n + 3)
		var want []uint64
		for i := 0; i < take; i++ {
			v, ok := a.Dequeue(bootA)
			if !ok {
				break
			}
			want = append(want, v)
		}
		got, cnt := b.DequeueN(bootB, take, nil)
		if cnt != len(want) {
			t.Fatalf("trial %d: DequeueN removed %d, want %d", trial, cnt, len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: value %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
		if a.Len(bootA) != b.Len(bootB) {
			t.Fatalf("trial %d: lengths diverge", trial)
		}
		if msg := b.CheckInvariants(bootB); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
	}
}

func TestCombineMixedCompletesEverything(t *testing.T) {
	env, q := newEnvQueue()
	boot := env.Boot()
	q.Enqueue(boot, 100)
	ops := []engine.Op{
		DequeueOp{Q: q},
		EnqueueOp{Q: q, Val: 1},
		DequeueOp{Q: q},
		EnqueueOp{Q: q, Val: 2},
	}
	res := make([]uint64, len(ops))
	done := make([]bool, len(ops))
	CombineMixed(boot, ops, res, done)
	for i, d := range done {
		if !d {
			t.Fatalf("op %d undone", i)
		}
	}
	// Enqueues splice first (1,2), then dequeues serve oldest-first:
	// dequeue[0] gets 100, dequeue[2] gets 1; 2 remains.
	if v, ok := engine.Unpack(res[0]); !ok || v != 100 {
		t.Fatalf("first dequeue = (%d,%v)", v, ok)
	}
	if v, ok := engine.Unpack(res[2]); !ok || v != 1 {
		t.Fatalf("second dequeue = (%d,%v)", v, ok)
	}
	items := q.Items(boot, nil)
	if len(items) != 1 || items[0] != 2 {
		t.Fatalf("queue = %v, want [2]", items)
	}
}

func TestConcurrentConservationAllEngines(t *testing.T) {
	const threads, perThread = 8, 40
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			q := New(env.Boot())
			hcf, err := core.New(env, core.Config{Policies: Policies()})
			if err != nil {
				t.Fatal(err)
			}
			mk := func() engines.Options { return engines.Options{Combine: CombineMixed} }
			engs := map[string]engine.Engine{
				"Lock":   engines.NewLock(env, mk()),
				"TLE":    engines.NewTLE(env, mk()),
				"FC":     engines.NewFC(env, mk()),
				"SCM":    engines.NewSCM(env, mk()),
				"TLE+FC": engines.NewTLEFC(env, mk()),
				"HCF":    hcf,
			}
			eng := engs[name]
			in := make([][]uint64, threads)
			out := make([][]uint64, threads)
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 88))
				for i := 0; i < perThread; i++ {
					if rng.IntN(2) == 0 {
						v := uint64(th.ID()*1000 + i)
						eng.Execute(th, EnqueueOp{Q: q, Val: v})
						in[th.ID()] = append(in[th.ID()], v)
					} else if v, ok := engine.Unpack(eng.Execute(th, DequeueOp{Q: q})); ok {
						out[th.ID()] = append(out[th.ID()], v)
					}
				}
			})
			boot := env.Boot()
			if msg := q.CheckInvariants(boot); msg != "" {
				t.Fatal(msg)
			}
			var ins, outs []uint64
			for i := 0; i < threads; i++ {
				ins = append(ins, in[i]...)
				outs = append(outs, out[i]...)
			}
			outs = q.Items(boot, outs)
			sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
			sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
			if len(ins) != len(outs) {
				t.Fatalf("enqueued %d, accounted %d", len(ins), len(outs))
			}
			for i := range ins {
				if ins[i] != outs[i] {
					t.Fatalf("multiset mismatch at %d", i)
				}
			}
		})
	}
}
