package skiplist

import (
	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
)

// Operation classes. Inserts and RemoveMins use separate publication
// arrays, as sketched for the priority queue in the paper's §2.1: inserts
// speculate through all phases (they rarely conflict), RemoveMins skip
// speculation entirely and go straight to combining after announcing.
const (
	ClassInsert = iota
	ClassRemoveMin
	// NumClasses is the number of operation classes.
	NumClasses
)

// InsertOp adds a key with a pre-drawn level (so retries reuse it).
// Result: PackBool(true).
type InsertOp struct {
	Q     *Queue
	Key   uint64
	Level int
}

var _ engine.Op = InsertOp{}

// Apply implements engine.Op.
func (o InsertOp) Apply(ctx memsim.Ctx) uint64 {
	o.Q.Insert(ctx, o.Key, o.Level)
	return engine.PackBool(true)
}

// Class implements engine.Op.
func (o InsertOp) Class() int { return ClassInsert }

// RemoveMinOp extracts the minimum. Result: Pack(key, nonEmpty).
type RemoveMinOp struct {
	Q *Queue
}

var _ engine.Op = RemoveMinOp{}

// Apply implements engine.Op.
func (o RemoveMinOp) Apply(ctx memsim.Ctx) uint64 {
	k, ok := o.Q.RemoveMin(ctx)
	return engine.Pack(k, ok)
}

// Class implements engine.Op.
func (o RemoveMinOp) Class() int { return ClassRemoveMin }

// CombineRemoveMins is the RunMulti for the RemoveMin array: all pending
// RemoveMins are served by a single RemoveMinN pass; the i-th pending
// operation receives the i-th smallest extracted key.
func CombineRemoveMins(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	var q *Queue
	idx := make([]int, 0, len(ops))
	for i, op := range ops {
		if done[i] {
			continue
		}
		rm, ok := op.(RemoveMinOp)
		if !ok {
			res[i] = op.Apply(ctx)
			done[i] = true
			continue
		}
		q = rm.Q
		idx = append(idx, i)
	}
	if q == nil {
		return
	}
	keys, n := q.RemoveMinN(ctx, len(idx), nil)
	for j, i := range idx {
		if j < n {
			res[i] = engine.Pack(keys[j], true)
		} else {
			res[i] = engine.Pack(0, false) // queue drained
		}
		done[i] = true
	}
}

// Policies returns the priority-queue HCF configuration from §2.1: Insert
// uses all four phases on array 0; RemoveMin announces on array 1 and goes
// directly to the combining phases.
func Policies() []core.Policy {
	out := make([]core.Policy, NumClasses)
	out[ClassInsert] = core.Policy{
		Name:               "insert",
		PubArray:           0,
		TryPrivateTrials:   4,
		TryVisibleTrials:   3,
		TryCombiningTrials: 3,
		ShouldHelp:         engine.HelpNone,
	}
	out[ClassRemoveMin] = core.Policy{
		Name:               "removemin",
		PubArray:           1,
		TryPrivateTrials:   0,
		TryVisibleTrials:   0,
		TryCombiningTrials: 5,
		ShouldHelp:         engine.HelpAll,
		RunMulti:           CombineRemoveMins,
		MaxBatch:           16,
	}
	return out
}

// CombineMixed is the combining function for the FC baseline: RemoveMins
// are batched through RemoveMinN, inserts applied sequentially.
func CombineMixed(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	CombineRemoveMins(ctx, ops, res, done)
	engine.ApplyEach(ctx, ops, res, done)
}
