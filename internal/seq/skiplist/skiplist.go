// Package skiplist implements a sequential skip-list-based priority queue,
// the motivating example of the paper's introduction: Insert operations on
// random priorities rarely conflict and run well speculatively, while
// RemoveMin operations always conflict with each other (they all remove the
// head) but combine trivially — one combiner can extract n minima in a
// single pass (RemoveMinN) and hand them out.
package skiplist

import (
	"math/rand/v2"

	"hcf/internal/memsim"
)

// MaxLevel is the maximum number of skip-list levels.
const MaxLevel = 12

// Node layout:
//
//	word 0: key (priority; duplicates allowed)
//	word 1: level (1..MaxLevel)
//	word 2..2+level-1: next pointers
//
// Nodes with level <= 6 fit one cache line; taller nodes take two.
const (
	offKey   = 0
	offLevel = 1
	offNext  = 2
)

func nodeWords(level int) int {
	w := offNext + level
	if w <= memsim.WordsPerLine {
		return memsim.WordsPerLine
	}
	return 2 * memsim.WordsPerLine
}

// Queue is a sequential skip-list priority queue over simulated memory.
type Queue struct {
	head memsim.Addr // MaxLevel head pointers
}

// New builds an empty queue using ctx.
func New(ctx memsim.Ctx) *Queue {
	q := &Queue{head: ctx.Alloc(2 * memsim.WordsPerLine)}
	for l := 0; l < MaxLevel; l++ {
		ctx.Store(q.head+memsim.Addr(l), 0)
	}
	return q
}

// RandomLevel draws a geometric(1/2) level in [1, MaxLevel]. Callers draw
// the level outside the operation so retried speculative attempts reuse it.
func RandomLevel(rng *rand.Rand) int {
	level := 1
	for level < MaxLevel && rng.Uint64()&1 == 0 {
		level++
	}
	return level
}

// Insert adds key with the given level (1..MaxLevel).
func (q *Queue) Insert(ctx memsim.Ctx, key uint64, level int) {
	if level < 1 {
		level = 1
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	// Standard search: find, per level, the last cell whose successor has a
	// key >= key.
	var update [MaxLevel]memsim.Addr // cell to rewrite at each level
	cur := memsim.Addr(0)            // 0 means "the head"
	for l := MaxLevel - 1; l >= 0; l-- {
		cell := q.nextCell(cur, l)
		for {
			nxt := memsim.Addr(ctx.Load(cell))
			if nxt == 0 || ctx.Load(nxt+offKey) >= key {
				break
			}
			cur = nxt
			cell = q.nextCell(cur, l)
		}
		update[l] = cell
	}
	n := ctx.Alloc(nodeWords(level))
	ctx.Store(n+offKey, key)
	ctx.Store(n+offLevel, uint64(level))
	for l := 0; l < level; l++ {
		ctx.Store(n+offNext+memsim.Addr(l), ctx.Load(update[l]))
		ctx.Store(update[l], uint64(n))
	}
}

// nextCell returns the cell holding node's level-l next pointer (or the
// head's when node is 0).
func (q *Queue) nextCell(node memsim.Addr, l int) memsim.Addr {
	if node == 0 {
		return q.head + memsim.Addr(l)
	}
	return node + offNext + memsim.Addr(l)
}

// Min returns the minimum key without removing it.
func (q *Queue) Min(ctx memsim.Ctx) (uint64, bool) {
	n := memsim.Addr(ctx.Load(q.head))
	if n == 0 {
		return 0, false
	}
	return ctx.Load(n + offKey), true
}

// RemoveMin removes and returns the minimum key.
func (q *Queue) RemoveMin(ctx memsim.Ctx) (uint64, bool) {
	n := memsim.Addr(ctx.Load(q.head))
	if n == 0 {
		return 0, false
	}
	key := ctx.Load(n + offKey)
	level := int(ctx.Load(n + offLevel))
	// The minimum is the first node at every level it participates in.
	for l := 0; l < level; l++ {
		ctx.Store(q.head+memsim.Addr(l), ctx.Load(n+offNext+memsim.Addr(l)))
	}
	ctx.Free(n, nodeWords(level))
	return key, true
}

// RemoveMinN removes up to n minima in one pass, appending them (in
// ascending order) to out and returning how many were removed. This is the
// combined operation a RemoveMin combiner uses: one level-0 walk plus one
// head-pointer update per level, instead of n full removals.
func (q *Queue) RemoveMinN(ctx memsim.Ctx, n int, out []uint64) ([]uint64, int) {
	if n <= 0 {
		return out, 0
	}
	type victim struct {
		addr  memsim.Addr
		level int
	}
	victims := make([]victim, 0, n)
	removed := make(map[memsim.Addr]struct{}, n)
	count := 0
	node := memsim.Addr(ctx.Load(q.head))
	for node != 0 && count < n {
		out = append(out, ctx.Load(node+offKey))
		victims = append(victims, victim{addr: node, level: int(ctx.Load(node + offLevel))})
		removed[node] = struct{}{}
		count++
		node = memsim.Addr(ctx.Load(node + offNext))
	}
	if count == 0 {
		return out, 0
	}
	// At each level, skip past removed nodes (they form a prefix of every
	// level's chain, since they are the globally smallest keys).
	for l := 0; l < MaxLevel; l++ {
		cur := memsim.Addr(ctx.Load(q.head + memsim.Addr(l)))
		for cur != 0 {
			if _, ok := removed[cur]; !ok {
				break
			}
			cur = memsim.Addr(ctx.Load(cur + offNext + memsim.Addr(l)))
		}
		ctx.Store(q.head+memsim.Addr(l), uint64(cur))
	}
	for _, v := range victims {
		ctx.Free(v.addr, nodeWords(v.level))
	}
	return out, count
}

// Len walks level 0 and returns the number of stored keys.
func (q *Queue) Len(ctx memsim.Ctx) int {
	count := 0
	for n := memsim.Addr(ctx.Load(q.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		count++
	}
	return count
}

// Keys appends all keys in ascending order to dst.
func (q *Queue) Keys(ctx memsim.Ctx, dst []uint64) []uint64 {
	for n := memsim.Addr(ctx.Load(q.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		dst = append(dst, ctx.Load(n+offKey))
	}
	return dst
}

// CheckInvariants verifies level-0 ordering and that each level's chain is
// a subsequence of level 0. Returns a description or "".
func (q *Queue) CheckInvariants(ctx memsim.Ctx) string {
	level0 := map[memsim.Addr]int{}
	pos := 0
	var prevKey uint64
	for n := memsim.Addr(ctx.Load(q.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		if _, dup := level0[n]; dup {
			return "cycle at level 0"
		}
		k := ctx.Load(n + offKey)
		if pos > 0 && k < prevKey {
			return "level 0 out of order"
		}
		lv := ctx.Load(n + offLevel)
		if lv < 1 || lv > MaxLevel {
			return "node level out of range"
		}
		prevKey = k
		level0[n] = pos
		pos++
	}
	for l := 1; l < MaxLevel; l++ {
		last := -1
		for n := memsim.Addr(ctx.Load(q.head + memsim.Addr(l))); n != 0; n = memsim.Addr(ctx.Load(n + offNext + memsim.Addr(l))) {
			p, ok := level0[n]
			if !ok {
				return "higher-level node missing from level 0"
			}
			if p <= last {
				return "higher level not a subsequence"
			}
			if int(ctx.Load(n+offLevel)) <= l {
				return "node linked above its level"
			}
			last = p
		}
	}
	return ""
}
