package skiplist

import (
	"math/rand/v2"
	"sort"
	"testing"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
)

func newEnvQueue() (*memsim.DetEnv, *Queue) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	return env, New(env.Boot())
}

func TestEmptyQueue(t *testing.T) {
	env, q := newEnvQueue()
	boot := env.Boot()
	if _, ok := q.Min(boot); ok {
		t.Error("Min on empty queue succeeded")
	}
	if _, ok := q.RemoveMin(boot); ok {
		t.Error("RemoveMin on empty queue succeeded")
	}
	if q.Len(boot) != 0 {
		t.Error("empty queue has nonzero length")
	}
}

func TestInsertRemoveMinOrdering(t *testing.T) {
	env, q := newEnvQueue()
	boot := env.Boot()
	rng := rand.New(rand.NewPCG(1, 1))
	keys := []uint64{5, 3, 9, 1, 7, 3, 5, 2}
	for _, k := range keys {
		q.Insert(boot, k, RandomLevel(rng))
	}
	if msg := q.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, w := range want {
		k, ok := q.RemoveMin(boot)
		if !ok || k != w {
			t.Fatalf("RemoveMin #%d = (%d,%v), want %d", i, k, ok, w)
		}
	}
	if _, ok := q.RemoveMin(boot); ok {
		t.Fatal("queue should be empty")
	}
}

func TestRandomLevelBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	histogram := make([]int, MaxLevel+1)
	for i := 0; i < 10000; i++ {
		l := RandomLevel(rng)
		if l < 1 || l > MaxLevel {
			t.Fatalf("level %d out of range", l)
		}
		histogram[l]++
	}
	if histogram[1] < 4000 || histogram[1] > 6000 {
		t.Errorf("level-1 frequency %d not ~50%%", histogram[1])
	}
}

func TestRemoveMinNMatchesRepeatedRemoveMin(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 40; trial++ {
		envA, a := newEnvQueue()
		envB, b := newEnvQueue()
		bootA, bootB := envA.Boot(), envB.Boot()
		n := rng.IntN(40)
		for i := 0; i < n; i++ {
			k := rng.Uint64N(100)
			l := RandomLevel(rng)
			a.Insert(bootA, k, l)
			b.Insert(bootB, k, l)
		}
		take := rng.IntN(n + 5)
		var want []uint64
		for i := 0; i < take; i++ {
			k, ok := a.RemoveMin(bootA)
			if !ok {
				break
			}
			want = append(want, k)
		}
		got, cnt := b.RemoveMinN(bootB, take, nil)
		if cnt != len(want) {
			t.Fatalf("trial %d: RemoveMinN removed %d, want %d", trial, cnt, len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: key %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
		if msg := b.CheckInvariants(bootB); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
		if a.Len(bootA) != b.Len(bootB) {
			t.Fatalf("trial %d: lengths diverge", trial)
		}
	}
}

func TestRemoveMinNZeroAndOverdrain(t *testing.T) {
	env, q := newEnvQueue()
	boot := env.Boot()
	if _, n := q.RemoveMinN(boot, 0, nil); n != 0 {
		t.Fatal("RemoveMinN(0) removed something")
	}
	q.Insert(boot, 4, 1)
	q.Insert(boot, 6, 2)
	keys, n := q.RemoveMinN(boot, 10, nil)
	if n != 2 || keys[0] != 4 || keys[1] != 6 {
		t.Fatalf("overdrain = (%v,%d)", keys, n)
	}
	if q.Len(boot) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestTallNodesAcrossLines(t *testing.T) {
	env, q := newEnvQueue()
	boot := env.Boot()
	for k := uint64(0); k < 50; k++ {
		q.Insert(boot, k, MaxLevel) // two-line nodes
	}
	if msg := q.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
	for k := uint64(0); k < 50; k++ {
		got, ok := q.RemoveMin(boot)
		if !ok || got != k {
			t.Fatalf("RemoveMin = (%d,%v), want %d", got, ok, k)
		}
	}
}

func buildPQEngines(t *testing.T, env memsim.Env) (map[string]engine.Engine, *Queue) {
	t.Helper()
	q := New(env.Boot())
	hcf, err := core.New(env, core.Config{Policies: Policies()})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() engines.Options { return engines.Options{Combine: CombineMixed} }
	return map[string]engine.Engine{
		"Lock":   engines.NewLock(env, mk()),
		"TLE":    engines.NewTLE(env, mk()),
		"FC":     engines.NewFC(env, mk()),
		"SCM":    engines.NewSCM(env, mk()),
		"TLE+FC": engines.NewTLEFC(env, mk()),
		"HCF":    hcf,
	}, q
}

// TestConcurrentMultisetConservation checks, for every engine, that the
// multiset of removed keys plus the remaining queue equals the multiset of
// inserted keys, and that no RemoveMin returned a key twice.
func TestConcurrentMultisetConservation(t *testing.T) {
	const threads, perThread = 8, 40
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			engs, q := buildPQEngines(t, env)
			eng := engs[name]
			inserted := make([][]uint64, threads)
			removedKeys := make([][]uint64, threads)
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 17))
				for i := 0; i < perThread; i++ {
					if rng.IntN(2) == 0 {
						k := rng.Uint64N(1000)
						eng.Execute(th, InsertOp{Q: q, Key: k, Level: RandomLevel(rng)})
						inserted[th.ID()] = append(inserted[th.ID()], k)
					} else {
						r := eng.Execute(th, RemoveMinOp{Q: q})
						if k, ok := engine.Unpack(r); ok {
							removedKeys[th.ID()] = append(removedKeys[th.ID()], k)
						}
					}
				}
			})
			boot := env.Boot()
			if msg := q.CheckInvariants(boot); msg != "" {
				t.Fatal(msg)
			}
			var ins, outs []uint64
			for i := 0; i < threads; i++ {
				ins = append(ins, inserted[i]...)
				outs = append(outs, removedKeys[i]...)
			}
			outs = q.Keys(boot, outs)
			sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
			sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
			if len(ins) != len(outs) {
				t.Fatalf("inserted %d keys, accounted for %d", len(ins), len(outs))
			}
			for i := range ins {
				if ins[i] != outs[i] {
					t.Fatalf("multiset mismatch at %d: %d vs %d", i, ins[i], outs[i])
				}
			}
		})
	}
}

// TestHCFRemoveMinsCombine verifies RemoveMins complete in the combining
// phases (their policy skips speculation) and are actually batched.
func TestHCFRemoveMinsCombine(t *testing.T) {
	const threads = 12
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	q := New(env.Boot())
	boot := env.Boot()
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 4000; i++ {
		q.Insert(boot, rng.Uint64N(10000), RandomLevel(rng))
	}
	hcf, err := core.New(env, core.Config{Policies: Policies()})
	if err != nil {
		t.Fatal(err)
	}
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 30; i++ {
			hcf.Execute(th, RemoveMinOp{Q: q})
		}
	})
	bd := hcf.PhaseBreakdown()
	rm := bd[ClassRemoveMin]
	if rm[core.PhaseTryPrivate] != 0 || rm[core.PhaseTryVisible] != 0 {
		t.Fatalf("RemoveMin completed in speculative phases: %v", rm)
	}
	m := hcf.Metrics()
	if m.CombiningDegree() <= 1.0 {
		t.Fatalf("combining degree %.2f, want > 1", m.CombiningDegree())
	}
	if msg := q.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}
