package skipset

import (
	"sort"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
)

// Operation kinds.
const (
	kindContains = iota
	kindInsert
	kindRemove
)

// Op is the common interface of skip-set operations.
type Op interface {
	engine.Op
	Key() uint64
	Set() *Set
	kind() int
}

// ContainsOp tests membership. Result: PackBool(present).
type ContainsOp struct {
	S *Set
	K uint64
}

// InsertOp adds a key with a pre-drawn level. Result: PackBool(was absent).
type InsertOp struct {
	S     *Set
	K     uint64
	Level int
}

// RemoveOp deletes a key. Result: PackBool(was present).
type RemoveOp struct {
	S *Set
	K uint64
}

var (
	_ Op = ContainsOp{}
	_ Op = InsertOp{}
	_ Op = RemoveOp{}
)

// Apply implements engine.Op.
func (o ContainsOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.S.Contains(ctx, o.K))
}

// Apply implements engine.Op.
func (o InsertOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.S.Insert(ctx, o.K, o.Level))
}

// Apply implements engine.Op.
func (o RemoveOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.S.Remove(ctx, o.K))
}

// Class implements engine.Op (one class: every op uses the same policy).
func (o ContainsOp) Class() int { return 0 }

// Class implements engine.Op.
func (o InsertOp) Class() int { return 0 }

// Class implements engine.Op.
func (o RemoveOp) Class() int { return 0 }

// Key implements Op.
func (o ContainsOp) Key() uint64 { return o.K }

// Key implements Op.
func (o InsertOp) Key() uint64 { return o.K }

// Key implements Op.
func (o RemoveOp) Key() uint64 { return o.K }

// Set implements Op.
func (o ContainsOp) Set() *Set { return o.S }

// Set implements Op.
func (o InsertOp) Set() *Set { return o.S }

// Set implements Op.
func (o RemoveOp) Set() *Set { return o.S }

func (o ContainsOp) kind() int { return kindContains }
func (o InsertOp) kind() int   { return kindInsert }
func (o RemoveOp) kind() int   { return kindRemove }

// CombineOps sorts selected operations by key and type, eliminates
// same-key groups under set semantics, and applies at most one physical
// update per key — the same runMulti discipline as the AVL set (§3.4).
func CombineOps(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	type item struct {
		key   uint64
		kind  int
		level int
		idx   int
	}
	items := make([]item, 0, len(ops))
	var set *Set
	for i, op := range ops {
		if done[i] {
			continue
		}
		so, ok := op.(Op)
		if !ok {
			res[i] = op.Apply(ctx)
			done[i] = true
			continue
		}
		set = so.Set()
		it := item{key: so.Key(), kind: so.kind(), idx: i}
		if ins, ok := op.(InsertOp); ok {
			it.level = ins.Level
		}
		items = append(items, it)
	}
	if set == nil {
		return
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].key != items[b].key {
			return items[a].key < items[b].key
		}
		if items[a].kind != items[b].kind {
			return items[a].kind < items[b].kind
		}
		return items[a].idx < items[b].idx
	})
	for g := 0; g < len(items); {
		h := g
		for h < len(items) && items[h].key == items[g].key {
			h++
		}
		key := items[g].key
		initial := set.Contains(ctx, key)
		cur := initial
		level := 1
		for _, it := range items[g:h] {
			switch it.kind {
			case kindContains:
				res[it.idx] = engine.PackBool(cur)
			case kindInsert:
				res[it.idx] = engine.PackBool(!cur)
				if !cur {
					level = it.level // the winning insert's level
				}
				cur = true
			case kindRemove:
				res[it.idx] = engine.PackBool(cur)
				cur = false
			}
			done[it.idx] = true
		}
		switch {
		case cur && !initial:
			set.Insert(ctx, key, level)
		case !cur && initial:
			set.Remove(ctx, key)
		}
		g = h
	}
}

// Policies returns the skip-set HCF configuration: one publication array,
// the standard 2/3/5 budget split, and sort/combine/eliminate application.
func Policies() []core.Policy {
	return []core.Policy{{
		Name:               "setop",
		PubArray:           0,
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		ShouldHelp:         engine.HelpAll,
		RunMulti:           CombineOps,
		MaxBatch:           8,
	}}
}
