// Package skipset implements a sequential skip-list-based ordered set.
// §3.1 of the paper names skip lists (with hash tables and search trees)
// as structures where HCF's parallelism-preserving combining should beat
// FC: operations on random keys rarely conflict and run speculatively,
// while skewed workloads create hot regions whose operations combine.
//
// The combining function mirrors the AVL set's (§3.4): selected operations
// are sorted by key, operations on the same key are combined and
// eliminated under set semantics, and at most one physical update per key
// is applied.
package skipset

import (
	"math/rand/v2"

	"hcf/internal/memsim"
)

// MaxLevel is the maximum number of levels.
const MaxLevel = 12

// Node layout:
//
//	word 0: key
//	word 1: level
//	word 2..: next pointers (one per level)
const (
	offKey   = 0
	offLevel = 1
	offNext  = 2
)

func nodeWords(level int) int {
	w := offNext + level
	if w <= memsim.WordsPerLine {
		return memsim.WordsPerLine
	}
	return 2 * memsim.WordsPerLine
}

// Set is a sequential ordered set of uint64 keys over simulated memory.
type Set struct {
	head memsim.Addr // MaxLevel head pointers
}

// New builds an empty set using ctx.
func New(ctx memsim.Ctx) *Set {
	s := &Set{head: ctx.Alloc(2 * memsim.WordsPerLine)}
	for l := 0; l < MaxLevel; l++ {
		ctx.Store(s.head+memsim.Addr(l), 0)
	}
	return s
}

// RandomLevel draws a geometric(1/2) level in [1, MaxLevel].
func RandomLevel(rng *rand.Rand) int {
	level := 1
	for level < MaxLevel && rng.Uint64()&1 == 0 {
		level++
	}
	return level
}

func (s *Set) nextCell(node memsim.Addr, l int) memsim.Addr {
	if node == 0 {
		return s.head + memsim.Addr(l)
	}
	return node + offNext + memsim.Addr(l)
}

// findPredecessors fills update with, per level, the cell whose successor
// is the first node with key >= key, and returns that node (0 if none).
func (s *Set) findPredecessors(ctx memsim.Ctx, key uint64, update *[MaxLevel]memsim.Addr) memsim.Addr {
	cur := memsim.Addr(0)
	for l := MaxLevel - 1; l >= 0; l-- {
		cell := s.nextCell(cur, l)
		for {
			nxt := memsim.Addr(ctx.Load(cell))
			if nxt == 0 || ctx.Load(nxt+offKey) >= key {
				break
			}
			cur = nxt
			cell = s.nextCell(cur, l)
		}
		update[l] = cell
	}
	return memsim.Addr(ctx.Load(update[0]))
}

// Contains reports whether key is in the set.
func (s *Set) Contains(ctx memsim.Ctx, key uint64) bool {
	cur := memsim.Addr(0)
	for l := MaxLevel - 1; l >= 0; l-- {
		for {
			nxt := memsim.Addr(ctx.Load(s.nextCell(cur, l)))
			if nxt == 0 {
				break
			}
			k := ctx.Load(nxt + offKey)
			if k == key {
				return true
			}
			if k > key {
				break
			}
			cur = nxt
		}
	}
	return false
}

// Insert adds key with a pre-drawn level, returning true if it was absent.
func (s *Set) Insert(ctx memsim.Ctx, key uint64, level int) bool {
	if level < 1 {
		level = 1
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	var update [MaxLevel]memsim.Addr
	at := s.findPredecessors(ctx, key, &update)
	if at != 0 && ctx.Load(at+offKey) == key {
		return false
	}
	n := ctx.Alloc(nodeWords(level))
	ctx.Store(n+offKey, key)
	ctx.Store(n+offLevel, uint64(level))
	for l := 0; l < level; l++ {
		ctx.Store(n+offNext+memsim.Addr(l), ctx.Load(update[l]))
		ctx.Store(update[l], uint64(n))
	}
	return true
}

// Remove deletes key, returning true if it was present.
func (s *Set) Remove(ctx memsim.Ctx, key uint64) bool {
	var update [MaxLevel]memsim.Addr
	at := s.findPredecessors(ctx, key, &update)
	if at == 0 || ctx.Load(at+offKey) != key {
		return false
	}
	level := int(ctx.Load(at + offLevel))
	for l := 0; l < level; l++ {
		if memsim.Addr(ctx.Load(update[l])) == at {
			ctx.Store(update[l], ctx.Load(at+offNext+memsim.Addr(l)))
		}
	}
	ctx.Free(at, nodeWords(level))
	return true
}

// Len returns the number of keys (level-0 walk).
func (s *Set) Len(ctx memsim.Ctx) int {
	count := 0
	for n := memsim.Addr(ctx.Load(s.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		count++
	}
	return count
}

// Keys appends all keys in ascending order to dst.
func (s *Set) Keys(ctx memsim.Ctx, dst []uint64) []uint64 {
	for n := memsim.Addr(ctx.Load(s.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		dst = append(dst, ctx.Load(n+offKey))
	}
	return dst
}

// RangeCount returns how many keys fall in [lo, hi] — an example of a
// read-mostly operation that profits from running speculatively alongside
// combined updates.
func (s *Set) RangeCount(ctx memsim.Ctx, lo, hi uint64) int {
	var update [MaxLevel]memsim.Addr
	n := s.findPredecessors(ctx, lo, &update)
	count := 0
	for n != 0 {
		k := ctx.Load(n + offKey)
		if k > hi {
			break
		}
		count++
		n = memsim.Addr(ctx.Load(n + offNext))
	}
	return count
}

// CheckInvariants verifies ordering, key uniqueness and level-subsequence
// structure. Returns a description or "".
func (s *Set) CheckInvariants(ctx memsim.Ctx) string {
	level0 := map[memsim.Addr]int{}
	pos := 0
	var prevKey uint64
	for n := memsim.Addr(ctx.Load(s.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		if _, dup := level0[n]; dup {
			return "cycle at level 0"
		}
		k := ctx.Load(n + offKey)
		if pos > 0 && k <= prevKey {
			return "level 0 not strictly ascending"
		}
		lv := ctx.Load(n + offLevel)
		if lv < 1 || lv > MaxLevel {
			return "node level out of range"
		}
		prevKey = k
		level0[n] = pos
		pos++
	}
	for l := 1; l < MaxLevel; l++ {
		last := -1
		for n := memsim.Addr(ctx.Load(s.head + memsim.Addr(l))); n != 0; n = memsim.Addr(ctx.Load(n + offNext + memsim.Addr(l))) {
			p, ok := level0[n]
			if !ok {
				return "higher-level node missing from level 0"
			}
			if p <= last {
				return "higher level not a subsequence"
			}
			last = p
		}
	}
	return ""
}
