package skipset

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
)

func newEnvSet() (*memsim.DetEnv, *Set) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	return env, New(env.Boot())
}

func TestEmptySet(t *testing.T) {
	env, s := newEnvSet()
	boot := env.Boot()
	if s.Contains(boot, 1) {
		t.Error("empty set contains 1")
	}
	if s.Remove(boot, 1) {
		t.Error("removed from empty set")
	}
	if s.Len(boot) != 0 {
		t.Error("empty set nonzero length")
	}
}

func TestInsertContainsRemove(t *testing.T) {
	env, s := newEnvSet()
	boot := env.Boot()
	rng := rand.New(rand.NewPCG(1, 1))
	if !s.Insert(boot, 42, RandomLevel(rng)) {
		t.Fatal("fresh insert failed")
	}
	if s.Insert(boot, 42, RandomLevel(rng)) {
		t.Fatal("duplicate insert succeeded")
	}
	if !s.Contains(boot, 42) {
		t.Fatal("inserted key missing")
	}
	if !s.Remove(boot, 42) {
		t.Fatal("remove failed")
	}
	if s.Contains(boot, 42) || s.Remove(boot, 42) {
		t.Fatal("key still present after removal")
	}
}

func TestQuickRandomOpsMatchModel(t *testing.T) {
	env, s := newEnvSet()
	boot := env.Boot()
	rng := rand.New(rand.NewPCG(2, 2))
	model := map[uint64]bool{}
	f := func(key uint8, action uint8) bool {
		k := uint64(key % 100)
		switch action % 3 {
		case 0:
			want := !model[k]
			model[k] = true
			if s.Insert(boot, k, RandomLevel(rng)) != want {
				return false
			}
		case 1:
			if s.Contains(boot, k) != model[k] {
				return false
			}
		case 2:
			want := model[k]
			delete(model, k)
			if s.Remove(boot, k) != want {
				return false
			}
		}
		return s.CheckInvariants(boot) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestKeysAscending(t *testing.T) {
	env, s := newEnvSet()
	boot := env.Boot()
	rng := rand.New(rand.NewPCG(3, 3))
	for _, k := range []uint64{9, 3, 7, 1, 5} {
		s.Insert(boot, k, RandomLevel(rng))
	}
	keys := s.Keys(boot, nil)
	want := []uint64{1, 3, 5, 7, 9}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
}

func TestRangeCount(t *testing.T) {
	env, s := newEnvSet()
	boot := env.Boot()
	rng := rand.New(rand.NewPCG(4, 4))
	for k := uint64(0); k < 100; k += 2 { // evens 0..98
		s.Insert(boot, k, RandomLevel(rng))
	}
	if got := s.RangeCount(boot, 10, 20); got != 6 {
		t.Fatalf("RangeCount(10,20) = %d, want 6", got)
	}
	if got := s.RangeCount(boot, 1, 1); got != 0 {
		t.Fatalf("RangeCount(1,1) = %d, want 0", got)
	}
	if got := s.RangeCount(boot, 0, 98); got != 50 {
		t.Fatalf("full range = %d, want 50", got)
	}
}

func TestCombineOpsEliminationSemantics(t *testing.T) {
	env, s := newEnvSet()
	boot := env.Boot()
	ops := []engine.Op{
		InsertOp{S: s, K: 5, Level: 2},
		InsertOp{S: s, K: 5, Level: 3},
		RemoveOp{S: s, K: 5},
		ContainsOp{S: s, K: 5},
	}
	res := make([]uint64, len(ops))
	done := make([]bool, len(ops))
	CombineOps(boot, ops, res, done)
	for i, d := range done {
		if !d {
			t.Fatalf("op %d undone", i)
		}
	}
	// Sorted order per key: contains, insert, insert, remove.
	if engine.UnpackBool(res[3]) {
		t.Error("contains (sorted first) should miss")
	}
	if !engine.UnpackBool(res[0]) || engine.UnpackBool(res[1]) {
		t.Error("exactly the first insert should win")
	}
	if !engine.UnpackBool(res[2]) {
		t.Error("remove should succeed")
	}
	if s.Contains(boot, 5) {
		t.Error("key should not be physically present")
	}
	if s.Len(boot) != 0 {
		t.Error("eliminated group touched the set")
	}
}

func TestConcurrentConformanceAllEngines(t *testing.T) {
	const threads, perThread = 8, 50
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			s := New(env.Boot())
			hcf, err := core.New(env, core.Config{Policies: Policies()})
			if err != nil {
				t.Fatal(err)
			}
			mk := func() engines.Options { return engines.Options{Combine: CombineOps} }
			engs := map[string]engine.Engine{
				"Lock":   engines.NewLock(env, mk()),
				"TLE":    engines.NewTLE(env, mk()),
				"FC":     engines.NewFC(env, mk()),
				"SCM":    engines.NewSCM(env, mk()),
				"TLE+FC": engines.NewTLEFC(env, mk()),
				"HCF":    hcf,
			}
			eng := engs[name]
			var inserted, removed [threads]int
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 77))
				for i := 0; i < perThread; i++ {
					key := rng.Uint64N(64)
					switch rng.IntN(3) {
					case 0:
						if engine.UnpackBool(eng.Execute(th, InsertOp{S: s, K: key, Level: RandomLevel(rng)})) {
							inserted[th.ID()]++
						}
					case 1:
						eng.Execute(th, ContainsOp{S: s, K: key})
					default:
						if engine.UnpackBool(eng.Execute(th, RemoveOp{S: s, K: key})) {
							removed[th.ID()]++
						}
					}
				}
			})
			boot := env.Boot()
			if msg := s.CheckInvariants(boot); msg != "" {
				t.Fatal(msg)
			}
			ins, rem := 0, 0
			for i := 0; i < threads; i++ {
				ins += inserted[i]
				rem += removed[i]
			}
			if got := s.Len(boot); got != ins-rem {
				t.Fatalf("size = %d, want %d", got, ins-rem)
			}
		})
	}
}
