package sortedlist

import (
	"sort"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
)

// Operation kinds.
const (
	kindContains = iota
	kindInsert
	kindRemove
)

// Op is the common interface of sorted-list operations.
type Op interface {
	engine.Op
	Key() uint64
	List() *List
	kind() int
}

// ContainsOp tests membership. Result: PackBool(present).
type ContainsOp struct {
	L *List
	K uint64
}

// InsertOp adds a key. Result: PackBool(was absent).
type InsertOp struct {
	L *List
	K uint64
}

// RemoveOp deletes a key. Result: PackBool(was present).
type RemoveOp struct {
	L *List
	K uint64
}

var (
	_ Op = ContainsOp{}
	_ Op = InsertOp{}
	_ Op = RemoveOp{}
)

// Apply implements engine.Op.
func (o ContainsOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.L.Contains(ctx, o.K))
}

// Apply implements engine.Op.
func (o InsertOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.L.Insert(ctx, o.K))
}

// Apply implements engine.Op.
func (o RemoveOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.L.Remove(ctx, o.K))
}

// Class implements engine.Op (a single class).
func (o ContainsOp) Class() int { return 0 }

// Class implements engine.Op.
func (o InsertOp) Class() int { return 0 }

// Class implements engine.Op.
func (o RemoveOp) Class() int { return 0 }

// Key implements Op.
func (o ContainsOp) Key() uint64 { return o.K }

// Key implements Op.
func (o InsertOp) Key() uint64 { return o.K }

// Key implements Op.
func (o RemoveOp) Key() uint64 { return o.K }

// List implements Op.
func (o ContainsOp) List() *List { return o.L }

// List implements Op.
func (o InsertOp) List() *List { return o.L }

// List implements Op.
func (o RemoveOp) List() *List { return o.L }

func (o ContainsOp) kind() int { return kindContains }
func (o InsertOp) kind() int   { return kindInsert }
func (o RemoveOp) kind() int   { return kindRemove }

// CombineOps applies a whole batch in a single merge pass: operations are
// sorted by key, same-key groups are combined and eliminated under set
// semantics, and the list is walked exactly once — k operations for one
// O(length) traversal instead of k traversals.
func CombineOps(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	type item struct {
		key  uint64
		kind int
		idx  int
	}
	items := make([]item, 0, len(ops))
	var list *List
	for i, op := range ops {
		if done[i] {
			continue
		}
		lo, ok := op.(Op)
		if !ok {
			res[i] = op.Apply(ctx)
			done[i] = true
			continue
		}
		list = lo.List()
		items = append(items, item{key: lo.Key(), kind: lo.kind(), idx: i})
	}
	if list == nil {
		return
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].key != items[b].key {
			return items[a].key < items[b].key
		}
		if items[a].kind != items[b].kind {
			return items[a].kind < items[b].kind
		}
		return items[a].idx < items[b].idx
	})
	cell := list.head
	for g := 0; g < len(items); {
		h := g
		for h < len(items) && items[h].key == items[g].key {
			h++
		}
		key := items[g].key
		var node memsim.Addr
		cell, node = list.locate(ctx, cell, key)
		initial := node != 0 && ctx.Load(node+offKey) == key
		cur := initial
		for _, it := range items[g:h] {
			switch it.kind {
			case kindContains:
				res[it.idx] = engine.PackBool(cur)
			case kindInsert:
				res[it.idx] = engine.PackBool(!cur)
				cur = true
			case kindRemove:
				res[it.idx] = engine.PackBool(cur)
				cur = false
			}
			done[it.idx] = true
		}
		switch {
		case cur && !initial:
			n := ctx.Alloc(nodeWords)
			ctx.Store(n+offKey, key)
			ctx.Store(n+offNext, uint64(node))
			ctx.Store(cell, uint64(n))
			cell = n + offNext // continue the walk after the new node
		case !cur && initial:
			ctx.Store(cell, ctx.Load(node+offNext))
			ctx.Free(node, nodeWords)
		}
		g = h
	}
}

// Policies returns the sorted-list HCF configuration: long scans make
// speculation fragile, so the budgets lean toward combining.
func Policies() []core.Policy {
	return []core.Policy{{
		Name:               "listop",
		PubArray:           0,
		TryPrivateTrials:   2,
		TryVisibleTrials:   2,
		TryCombiningTrials: 6,
		ShouldHelp:         engine.HelpAll,
		RunMulti:           CombineOps,
		MaxBatch:           16,
	}}
}
