// Package sortedlist implements a sequential sorted singly-linked-list set.
// Its operations are O(n) scans with large read footprints, which makes it
// the opposite regime from the hash table: speculation suffers capacity and
// conflict aborts on long walks, while a combiner amortizes beautifully —
// a batch of k operations sorted by key applies in a single merge pass over
// the list instead of k walks. Related work on combining for linked lists
// ([8] in the paper) targets exactly this structure.
package sortedlist

import "hcf/internal/memsim"

// Node layout: word 0 key, word 1 next. Padded to a line.
const (
	offKey    = 0
	offNext   = 1
	nodeWords = memsim.WordsPerLine
)

// List is a sequential sorted set of uint64 keys over simulated memory.
type List struct {
	head memsim.Addr // head pointer cell
}

// New builds an empty list using ctx.
func New(ctx memsim.Ctx) *List {
	l := &List{head: ctx.Alloc(memsim.WordsPerLine)}
	ctx.Store(l.head, 0)
	return l
}

// locate returns the cell whose successor is the first node with
// key >= k, plus that node (0 if none), starting from a given position —
// the primitive both single operations and the merge pass use.
func (l *List) locate(ctx memsim.Ctx, fromCell memsim.Addr, k uint64) (cell, node memsim.Addr) {
	cell = fromCell
	for {
		node = memsim.Addr(ctx.Load(cell))
		if node == 0 || ctx.Load(node+offKey) >= k {
			return cell, node
		}
		cell = node + offNext
	}
}

// Contains reports whether key is in the set.
func (l *List) Contains(ctx memsim.Ctx, key uint64) bool {
	_, node := l.locate(ctx, l.head, key)
	return node != 0 && ctx.Load(node+offKey) == key
}

// Insert adds key, returning true if it was absent.
func (l *List) Insert(ctx memsim.Ctx, key uint64) bool {
	cell, node := l.locate(ctx, l.head, key)
	if node != 0 && ctx.Load(node+offKey) == key {
		return false
	}
	n := ctx.Alloc(nodeWords)
	ctx.Store(n+offKey, key)
	ctx.Store(n+offNext, uint64(node))
	ctx.Store(cell, uint64(n))
	return true
}

// Remove deletes key, returning true if it was present.
func (l *List) Remove(ctx memsim.Ctx, key uint64) bool {
	cell, node := l.locate(ctx, l.head, key)
	if node == 0 || ctx.Load(node+offKey) != key {
		return false
	}
	ctx.Store(cell, ctx.Load(node+offNext))
	ctx.Free(node, nodeWords)
	return true
}

// Len returns the number of keys.
func (l *List) Len(ctx memsim.Ctx) int {
	count := 0
	for n := memsim.Addr(ctx.Load(l.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		count++
	}
	return count
}

// Keys appends all keys in ascending order to dst.
func (l *List) Keys(ctx memsim.Ctx, dst []uint64) []uint64 {
	for n := memsim.Addr(ctx.Load(l.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		dst = append(dst, ctx.Load(n+offKey))
	}
	return dst
}

// CheckInvariants verifies strict ascending order. Returns "" when
// consistent.
func (l *List) CheckInvariants(ctx memsim.Ctx) string {
	seen := map[memsim.Addr]bool{}
	first := true
	var prev uint64
	for n := memsim.Addr(ctx.Load(l.head)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		if seen[n] {
			return "cycle in list"
		}
		seen[n] = true
		k := ctx.Load(n + offKey)
		if !first && k <= prev {
			return "list not strictly ascending"
		}
		first = false
		prev = k
	}
	return ""
}
