package sortedlist

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
)

func newEnvList() (*memsim.DetEnv, *List) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	return env, New(env.Boot())
}

func TestEmptyList(t *testing.T) {
	env, l := newEnvList()
	boot := env.Boot()
	if l.Contains(boot, 1) || l.Remove(boot, 1) || l.Len(boot) != 0 {
		t.Fatal("empty list misbehaves")
	}
}

func TestInsertOrderMaintained(t *testing.T) {
	env, l := newEnvList()
	boot := env.Boot()
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		if !l.Insert(boot, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	keys := l.Keys(boot, nil)
	want := []uint64{1, 3, 5, 7, 9}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
	if msg := l.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}

func TestQuickRandomOpsMatchModel(t *testing.T) {
	env, l := newEnvList()
	boot := env.Boot()
	model := map[uint64]bool{}
	f := func(key uint8, action uint8) bool {
		k := uint64(key % 80)
		switch action % 3 {
		case 0:
			want := !model[k]
			model[k] = true
			if l.Insert(boot, k) != want {
				return false
			}
		case 1:
			if l.Contains(boot, k) != model[k] {
				return false
			}
		case 2:
			want := model[k]
			delete(model, k)
			if l.Remove(boot, k) != want {
				return false
			}
		}
		return l.CheckInvariants(boot) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestCombineOpsMatchesCanonicalSequential replays random batches in the
// combiner's canonical order against a second list and compares results
// and final contents.
func TestCombineOpsMatchesCanonicalSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 80; trial++ {
		envC, lc := newEnvList()
		envS, ls := newEnvList()
		bootC, bootS := envC.Boot(), envS.Boot()
		for i := 0; i < rng.IntN(12); i++ {
			k := rng.Uint64N(24)
			lc.Insert(bootC, k)
			ls.Insert(bootS, k)
		}
		n := 1 + rng.IntN(10)
		type item struct {
			key  uint64
			kind int
			idx  int
		}
		items := make([]item, n)
		ops := make([]engine.Op, n)
		for i := 0; i < n; i++ {
			items[i] = item{key: rng.Uint64N(24), kind: rng.IntN(3), idx: i}
			switch items[i].kind {
			case kindContains:
				ops[i] = ContainsOp{L: lc, K: items[i].key}
			case kindInsert:
				ops[i] = InsertOp{L: lc, K: items[i].key}
			default:
				ops[i] = RemoveOp{L: lc, K: items[i].key}
			}
		}
		res := make([]uint64, n)
		done := make([]bool, n)
		CombineOps(bootC, ops, res, done)
		// Canonical order: (key, kind, idx).
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				x, y := items[a], items[b]
				if y.key < x.key || (y.key == x.key && (y.kind < x.kind ||
					(y.kind == x.kind && y.idx < x.idx))) {
					items[a], items[b] = items[b], items[a]
				}
			}
		}
		for _, it := range items {
			var want bool
			switch it.kind {
			case kindContains:
				want = ls.Contains(bootS, it.key)
			case kindInsert:
				want = ls.Insert(bootS, it.key)
			default:
				want = ls.Remove(bootS, it.key)
			}
			if engine.UnpackBool(res[it.idx]) != want {
				t.Fatalf("trial %d: op idx %d (key %d kind %d) = %v, want %v",
					trial, it.idx, it.key, it.kind, engine.UnpackBool(res[it.idx]), want)
			}
		}
		kc := lc.Keys(bootC, nil)
		ks := ls.Keys(bootS, nil)
		if len(kc) != len(ks) {
			t.Fatalf("trial %d: contents differ: %v vs %v", trial, kc, ks)
		}
		for i := range kc {
			if kc[i] != ks[i] {
				t.Fatalf("trial %d: contents differ: %v vs %v", trial, kc, ks)
			}
		}
		if msg := lc.CheckInvariants(bootC); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
	}
}

func TestConcurrentConformanceAllEngines(t *testing.T) {
	const threads, perThread = 8, 40
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			l := New(env.Boot())
			hcf, err := core.New(env, core.Config{Policies: Policies()})
			if err != nil {
				t.Fatal(err)
			}
			mk := func() engines.Options { return engines.Options{Combine: CombineOps} }
			engs := map[string]engine.Engine{
				"Lock":   engines.NewLock(env, mk()),
				"TLE":    engines.NewTLE(env, mk()),
				"FC":     engines.NewFC(env, mk()),
				"SCM":    engines.NewSCM(env, mk()),
				"TLE+FC": engines.NewTLEFC(env, mk()),
				"HCF":    hcf,
			}
			eng := engs[name]
			var inserted, removed [threads]int
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 66))
				for i := 0; i < perThread; i++ {
					k := rng.Uint64N(48)
					switch rng.IntN(3) {
					case 0:
						if engine.UnpackBool(eng.Execute(th, InsertOp{L: l, K: k})) {
							inserted[th.ID()]++
						}
					case 1:
						eng.Execute(th, ContainsOp{L: l, K: k})
					default:
						if engine.UnpackBool(eng.Execute(th, RemoveOp{L: l, K: k})) {
							removed[th.ID()]++
						}
					}
				}
			})
			boot := env.Boot()
			if msg := l.CheckInvariants(boot); msg != "" {
				t.Fatal(msg)
			}
			ins, rem := 0, 0
			for i := 0; i < threads; i++ {
				ins += inserted[i]
				rem += removed[i]
			}
			if got := l.Len(boot); got != ins-rem {
				t.Fatalf("size = %d, want %d", got, ins-rem)
			}
		})
	}
}

// TestMergePassSinglyTraverses sanity-checks the single-pass property: a
// combined batch touching k ascending keys must not read more list nodes
// than one full traversal (plus constants), unlike k separate walks.
func TestMergePassSinglyTraverses(t *testing.T) {
	env, l := newEnvList()
	boot := env.Boot()
	const size = 200
	for k := uint64(0); k < size; k++ {
		l.Insert(boot, k*2)
	}
	ops := make([]engine.Op, 8)
	for i := range ops {
		ops[i] = InsertOp{L: l, K: uint64(i*40 + 1)} // spread across the list
	}
	res := make([]uint64, len(ops))
	done := make([]bool, len(ops))
	loadsBefore := boot.Stats().Loads
	CombineOps(boot, ops, res, done)
	loads := boot.Stats().Loads - loadsBefore
	// One traversal reads ~2 words per node (key + next); 8 separate walks
	// would read ~8x that for the early part. Allow generous slack.
	if loads > 3*size {
		t.Fatalf("merge pass performed %d loads for a %d-node list", loads, size)
	}
}
