package stack

import (
	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
)

// PushOp pushes a value. Result: PackBool(true).
type PushOp struct {
	S   *Stack
	Val uint64
}

// PopOp pops a value. Result: Pack(value, nonEmpty).
type PopOp struct {
	S *Stack
}

var (
	_ engine.Op = PushOp{}
	_ engine.Op = PopOp{}
)

// Apply implements engine.Op.
func (o PushOp) Apply(ctx memsim.Ctx) uint64 {
	o.S.Push(ctx, o.Val)
	return engine.PackBool(true)
}

// Apply implements engine.Op.
func (o PopOp) Apply(ctx memsim.Ctx) uint64 {
	v, ok := o.S.Pop(ctx)
	return engine.Pack(v, ok)
}

// Class implements engine.Op.
func (o PushOp) Class() int { return 0 }

// Class implements engine.Op.
func (o PopOp) Class() int { return 0 }

// Combine eliminates concurrent push/pop pairs (the pop takes the pushed
// value without touching the stack), applies surplus pops, and splices
// surplus pushes with one PushN.
func Combine(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	var s *Stack
	type push struct {
		idx int
		val uint64
	}
	var pending []push
	for i, op := range ops {
		if done[i] {
			continue
		}
		switch o := op.(type) {
		case PushOp:
			s = o.S
			pending = append(pending, push{i, o.Val})
		case PopOp:
			s = o.S
			if n := len(pending); n > 0 {
				p := pending[n-1]
				pending = pending[:n-1]
				res[p.idx] = engine.PackBool(true)
				done[p.idx] = true
				res[i] = engine.Pack(p.val, true)
				done[i] = true
				continue
			}
			v, ok := s.Pop(ctx)
			res[i] = engine.Pack(v, ok)
			done[i] = true
		default:
			res[i] = op.Apply(ctx)
			done[i] = true
		}
	}
	if len(pending) == 0 {
		return
	}
	vals := make([]uint64, len(pending))
	for j, p := range pending {
		vals[j] = p.val
		res[p.idx] = engine.PackBool(true)
		done[p.idx] = true
	}
	s.PushN(ctx, vals)
}

// Policies returns an HCF configuration for the stack: one publication
// array, full phase budgets, elimination-aware combining. The paper expects
// this NOT to beat plain FC — the stack has no exploitable parallelism.
func Policies() []core.Policy {
	return []core.Policy{{
		Name:               "stackop",
		PubArray:           0,
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		ShouldHelp:         engine.HelpAll,
		RunMulti:           Combine,
		MaxBatch:           16,
	}}
}
