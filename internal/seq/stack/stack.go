// Package stack implements a sequential linked stack. The paper's §3.1
// qualitative analysis predicts HCF should NOT win here: every operation
// conflicts on the top-of-stack pointer, so there is no parallelism for HTM
// to exploit and flat combining with elimination is the right tool. The
// stack is included to reproduce that negative result honestly.
package stack

import "hcf/internal/memsim"

// Node layout: word 0 value, word 1 next. Padded to a line.
const (
	offVal    = 0
	offNext   = 1
	nodeWords = memsim.WordsPerLine
)

// Stack is a sequential linked stack over simulated memory.
type Stack struct {
	top memsim.Addr // top pointer cell
}

// New builds an empty stack using ctx.
func New(ctx memsim.Ctx) *Stack {
	s := &Stack{top: ctx.Alloc(memsim.WordsPerLine)}
	ctx.Store(s.top, 0)
	return s
}

// Push adds value on top.
func (s *Stack) Push(ctx memsim.Ctx, value uint64) {
	n := ctx.Alloc(nodeWords)
	ctx.Store(n+offVal, value)
	ctx.Store(n+offNext, ctx.Load(s.top))
	ctx.Store(s.top, uint64(n))
}

// Pop removes and returns the top value.
func (s *Stack) Pop(ctx memsim.Ctx) (uint64, bool) {
	n := memsim.Addr(ctx.Load(s.top))
	if n == 0 {
		return 0, false
	}
	v := ctx.Load(n + offVal)
	ctx.Store(s.top, ctx.Load(n+offNext))
	ctx.Free(n, nodeWords)
	return v, true
}

// PushN pushes values in order with a single top-pointer update.
func (s *Stack) PushN(ctx memsim.Ctx, values []uint64) {
	if len(values) == 0 {
		return
	}
	var head, tail memsim.Addr
	for _, v := range values {
		n := ctx.Alloc(nodeWords)
		ctx.Store(n+offVal, v)
		if head == 0 {
			head, tail = n, n
			continue
		}
		ctx.Store(n+offNext, uint64(head))
		head = n
	}
	ctx.Store(tail+offNext, ctx.Load(s.top))
	ctx.Store(s.top, uint64(head))
}

// Len returns the number of stored values.
func (s *Stack) Len(ctx memsim.Ctx) int {
	count := 0
	for n := memsim.Addr(ctx.Load(s.top)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		count++
	}
	return count
}

// Items appends the values top-to-bottom to dst.
func (s *Stack) Items(ctx memsim.Ctx, dst []uint64) []uint64 {
	for n := memsim.Addr(ctx.Load(s.top)); n != 0; n = memsim.Addr(ctx.Load(n + offNext)) {
		dst = append(dst, ctx.Load(n+offVal))
	}
	return dst
}
