package stack

import (
	"math/rand/v2"
	"sort"
	"testing"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
)

func newEnvStack() (*memsim.DetEnv, *Stack) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	return env, New(env.Boot())
}

func TestEmptyStack(t *testing.T) {
	env, s := newEnvStack()
	boot := env.Boot()
	if _, ok := s.Pop(boot); ok {
		t.Error("Pop on empty succeeded")
	}
	if s.Len(boot) != 0 {
		t.Error("empty stack nonzero length")
	}
}

func TestLIFOOrder(t *testing.T) {
	env, s := newEnvStack()
	boot := env.Boot()
	for v := uint64(1); v <= 5; v++ {
		s.Push(boot, v)
	}
	for want := uint64(5); want >= 1; want-- {
		v, ok := s.Pop(boot)
		if !ok || v != want {
			t.Fatalf("Pop = (%d,%v), want %d", v, ok, want)
		}
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	env, s := newEnvStack()
	boot := env.Boot()
	var model []uint64
	rng := rand.New(rand.NewPCG(8, 8))
	for i := 0; i < 3000; i++ {
		if rng.IntN(2) == 0 {
			v := rng.Uint64N(1 << 30)
			s.Push(boot, v)
			model = append(model, v)
		} else {
			got, ok := s.Pop(boot)
			if ok != (len(model) > 0) {
				t.Fatalf("step %d: ok=%v model=%d", i, ok, len(model))
			}
			if ok {
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if got != want {
					t.Fatalf("step %d: Pop=%d want %d", i, got, want)
				}
			}
		}
	}
}

func TestPushNMatchesSequential(t *testing.T) {
	envA, a := newEnvStack()
	envB, b := newEnvStack()
	bootA, bootB := envA.Boot(), envB.Boot()
	vals := []uint64{3, 1, 4, 1, 5}
	a.Push(bootA, 9)
	b.Push(bootB, 9)
	for _, v := range vals {
		a.Push(bootA, v)
	}
	b.PushN(bootB, vals)
	ia := a.Items(bootA, nil)
	ib := b.Items(bootB, nil)
	if len(ia) != len(ib) {
		t.Fatalf("lengths differ: %v vs %v", ia, ib)
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("contents differ: %v vs %v", ia, ib)
		}
	}
}

func TestCombineElimination(t *testing.T) {
	env, s := newEnvStack()
	boot := env.Boot()
	s.Push(boot, 100)
	ops := []engine.Op{
		PushOp{S: s, Val: 1},
		PopOp{S: s},
		PopOp{S: s},
		PushOp{S: s, Val: 2},
	}
	res := make([]uint64, 4)
	done := make([]bool, 4)
	Combine(boot, ops, res, done)
	// Pop[1] eliminates with Push(1); Pop[2] pops 100; Push(2) lands.
	if v, ok := engine.Unpack(res[1]); !ok || v != 1 {
		t.Fatalf("eliminated pop = (%d,%v)", v, ok)
	}
	if v, ok := engine.Unpack(res[2]); !ok || v != 100 {
		t.Fatalf("physical pop = (%d,%v)", v, ok)
	}
	items := s.Items(boot, nil)
	if len(items) != 1 || items[0] != 2 {
		t.Fatalf("stack = %v, want [2]", items)
	}
}

func TestConcurrentConservationAllEngines(t *testing.T) {
	const threads, perThread = 8, 40
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			s := New(env.Boot())
			hcf, err := core.New(env, core.Config{Policies: Policies()})
			if err != nil {
				t.Fatal(err)
			}
			mk := func() engines.Options { return engines.Options{Combine: Combine} }
			engs := map[string]engine.Engine{
				"Lock":   engines.NewLock(env, mk()),
				"TLE":    engines.NewTLE(env, mk()),
				"FC":     engines.NewFC(env, mk()),
				"SCM":    engines.NewSCM(env, mk()),
				"TLE+FC": engines.NewTLEFC(env, mk()),
				"HCF":    hcf,
			}
			eng := engs[name]
			pushed := make([][]uint64, threads)
			popped := make([][]uint64, threads)
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 31))
				for i := 0; i < perThread; i++ {
					if rng.IntN(2) == 0 {
						v := uint64(th.ID()*1000 + i)
						eng.Execute(th, PushOp{S: s, Val: v})
						pushed[th.ID()] = append(pushed[th.ID()], v)
					} else {
						if x, ok := engine.Unpack(eng.Execute(th, PopOp{S: s})); ok {
							popped[th.ID()] = append(popped[th.ID()], x)
						}
					}
				}
			})
			boot := env.Boot()
			var in, out []uint64
			for i := 0; i < threads; i++ {
				in = append(in, pushed[i]...)
				out = append(out, popped[i]...)
			}
			out = s.Items(boot, out)
			sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			if len(in) != len(out) {
				t.Fatalf("pushed %d, accounted %d", len(in), len(out))
			}
			for i := range in {
				if in[i] != out[i] {
					t.Fatalf("multiset mismatch at %d", i)
				}
			}
		})
	}
}
