package shard

import (
	"errors"
	"fmt"
	"sync/atomic"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/memsim"
	"hcf/internal/route"
)

// ErrStaleTopology is returned by Split/Merge when the topology changed
// between the caller's decision and the all-locks acquisition; the
// caller should re-read the topology and re-decide.
var ErrStaleTopology = errors.New("shard: topology changed before resharding could start")

// ErrNoSpareShard is returned by Split when every provisioned shard
// already owns part of the keyspace.
var ErrNoSpareShard = errors.New("shard: no spare shard to split into")

// MigrateFunc moves the data of every key whose owner changes between
// old and next from shard `from`'s structure to shard `to`'s, returning
// the number of keys moved. It runs while the engine holds every
// shard's data-structure lock, with ctx charging the migration's
// simulated-memory cost to the caller, so the plain remove-and-insert
// sequential code is linearizable as one atomic step.
type MigrateFunc func(ctx memsim.Ctx, from, to int, old, next *route.Ring) int

// ElasticConfig configures an Elastic engine. All MaxShards frameworks
// are provisioned at construction (creating simulated-memory structures
// mid-run is not safe); the ring decides which are active.
type ElasticConfig struct {
	// MaxShards is the number of provisioned frameworks; must be ≥ 1.
	MaxShards int
	// Initial is the number of initially active shards (default 1).
	Initial int
	// Slots is the ring's virtual-node count (0 = route.DefaultSlots).
	Slots int
	// Key extracts an operation's routing key; must be non-nil.
	// Operations with ok=false run on the all-locks cross-shard path.
	Key KeyFunc
	// Bind attaches a keyed operation to shard si's structure (e.g.
	// sets a hash-table op's table pointer); must be non-nil. Callers
	// submit unbound operations — binding happens inside the
	// shard-local execution, after ownership is validated against the
	// live ring, so an operation always applies to the structure that
	// owns its key at its linearization point (a caller-side binding
	// could go stale between routing and commit).
	Bind func(op engine.Op, si int) engine.Op
	// Migrate moves re-owned keys during Split/Merge; must be non-nil.
	Migrate MigrateFunc
	// Policies, indexed by Op.Class(), must be non-empty.
	Policies []core.Policy
	// HoldSelectionLock selects the specialized HCF variant (§2.4).
	HoldSelectionLock bool
	// HTM configures each shard's transactional engine.
	HTM htm.Config
	// Name overrides the engine name (default "HCF-E").
	Name string
	// ExtraArrays provisions spare publication arrays per shard.
	ExtraArrays int
}

// Elastic is a Sharded engine whose key→shard topology is a live
// consistent-hash ring: shards split and merge online, and every
// operation routes through an epoch-published route.Table.
//
// The routing race is resolved optimistically: Execute routes on the
// current ring, then the operation re-validates ownership *inside* its
// shard-local execution (routedOp.Apply). The topology only ever
// changes while Split/Merge holds every shard lock, and a shard-local
// execution either holds its shard's lock or runs a transaction
// subscribed to it — so an execution that commits is guaranteed to have
// validated against the ring that is still current at its
// linearization point. A stale route applies nothing, is skipped by the
// witness, and the owner retries on the freshly published ring.
type Elastic struct {
	*Sharded
	table   *route.Table
	key     KeyFunc
	bind    func(op engine.Op, si int) engine.Op
	migrate MigrateFunc
	// per-thread routing state: one outstanding routed op per thread.
	routed []routedOp

	splits    atomic.Uint64
	merges    atomic.Uint64
	movedKeys atomic.Uint64
	reroutes  atomic.Uint64
}

var (
	_ engine.Engine          = (*Elastic)(nil)
	_ engine.WitnessedEngine = (*Elastic)(nil)
	_ engine.MeteredEngine   = (*Elastic)(nil)
)

// routedOp wraps a shard-local operation with its ring ownership check.
// One instance per thread is reused for every routed execution: a
// thread has at most one outstanding operation, and the engine fully
// completes it (witness included) before Execute returns.
type routedOp struct {
	e     *Elastic
	inner engine.Op
	key   uint64
	si    int32
	// stale is set by Apply when the ring no longer routes key to si.
	// Aborted speculative attempts re-run Apply, so the committed
	// attempt's verdict is the one visible after Execute returns.
	stale bool
}

// Apply validates ownership against the *current* ring before touching
// shard data, then binds the inner op to its shard's structure and runs
// it. A stale route applies nothing and returns 0; the owner thread
// re-routes and retries.
func (o *routedOp) Apply(ctx memsim.Ctx) uint64 {
	if o.e.table.Load().Owner(o.key) != int(o.si) {
		o.stale = true
		return 0
	}
	o.stale = false
	return o.e.bind(o.inner, int(o.si)).Apply(ctx)
}

// Class routes policy lookup to the wrapped operation's class.
func (o *routedOp) Class() int { return o.inner.Class() }

// NewElastic builds an Elastic engine over env.
func NewElastic(env memsim.Env, cfg ElasticConfig) (*Elastic, error) {
	if cfg.MaxShards < 1 {
		return nil, fmt.Errorf("shard: MaxShards must be >= 1, got %d", cfg.MaxShards)
	}
	if cfg.Key == nil {
		return nil, fmt.Errorf("shard: Key must be non-nil")
	}
	if cfg.Bind == nil {
		return nil, fmt.Errorf("shard: Bind must be non-nil")
	}
	if cfg.Migrate == nil {
		return nil, fmt.Errorf("shard: Migrate must be non-nil")
	}
	initial := cfg.Initial
	if initial == 0 {
		initial = 1
	}
	if initial < 1 || initial > cfg.MaxShards {
		return nil, fmt.Errorf("shard: Initial %d outside [1,%d]", initial, cfg.MaxShards)
	}
	ring, err := route.NewUniform(initial, cfg.Slots, cfg.MaxShards)
	if err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		name = "HCF-E"
	}
	base, err := newShards(env, Config{
		Policies:          cfg.Policies,
		HoldSelectionLock: cfg.HoldSelectionLock,
		HTM:               cfg.HTM,
		ExtraArrays:       cfg.ExtraArrays,
	}, cfg.MaxShards, name)
	if err != nil {
		return nil, err
	}
	e := &Elastic{
		Sharded: base,
		table:   route.NewTable(ring),
		key:     cfg.Key,
		bind:    cfg.Bind,
		migrate: cfg.Migrate,
		routed:  make([]routedOp, env.NumThreads()+1),
	}
	for i := range e.routed {
		e.routed[i].e = e
	}
	return e, nil
}

// Table exposes the live topology (wait-free Load on every route).
func (e *Elastic) Table() *route.Table { return e.table }

// Execute routes op on the current ring and retries on a stale route.
// Operations without a routing key take the all-locks cross-shard path.
func (e *Elastic) Execute(th *memsim.Thread, op engine.Op) uint64 {
	k, ok := e.key(op)
	if !ok {
		return e.executeCross(th, op)
	}
	ro := &e.routed[th.ID()]
	ro.inner, ro.key = op, k
	for {
		ro.si = int32(e.table.Load().Owner(k))
		res := e.shards[ro.si].Execute(th, ro)
		if !ro.stale {
			ro.inner = nil
			return res
		}
		// The ring moved this key while the op was in flight: nothing
		// was applied, nothing witnessed. Re-route on the new ring.
		e.reroutes.Add(1)
	}
}

// SetWitness installs fn on every shard and the cross path, wrapped so
// that stale (non-)applications are invisible and committed routed
// operations are reported as their inner op.
func (e *Elastic) SetWitness(fn engine.WitnessFunc) {
	if fn == nil {
		e.Sharded.SetWitness(nil)
		return
	}
	e.Sharded.SetWitness(func(stamp uint64, intra int, op engine.Op, result uint64) {
		if ro, ok := op.(*routedOp); ok {
			if ro.stale {
				return
			}
			op = ro.inner
		}
		fn(stamp, intra, op, result)
	})
}

// Split divides shard from's keyspace with the lowest-numbered spare
// shard: half of from's ring slots — and the keys they own — move to
// the spare, and the new ring is published atomically with the data
// migration. Returns the spare's index and the number of keys moved.
// Shard-local traffic on uninvolved shards is stopped only for the
// duration of the all-locks critical section, exactly like any
// cross-shard operation.
func (e *Elastic) Split(th *memsim.Thread, from int) (to, moved int, err error) {
	old := e.table.Load()
	to = -1
	for s := 0; s < old.NumShards(); s++ {
		if old.SlotCount(s) == 0 {
			to = s
			break
		}
	}
	if to < 0 {
		return -1, 0, ErrNoSpareShard
	}
	next, err := old.Split(from, to)
	if err != nil {
		return -1, 0, err
	}
	moved, err = e.reshape(th, old, next, from, to)
	if err != nil {
		return -1, 0, err
	}
	e.splits.Add(1)
	return to, moved, nil
}

// Merge folds shard from's keyspace (and data) into shard into,
// returning the number of keys moved. from becomes a spare available to
// later splits.
func (e *Elastic) Merge(th *memsim.Thread, from, into int) (moved int, err error) {
	old := e.table.Load()
	next, err := old.Merge(from, into)
	if err != nil {
		return 0, err
	}
	moved, err = e.reshape(th, old, next, from, into)
	if err != nil {
		return 0, err
	}
	e.merges.Add(1)
	return moved, nil
}

// reshape is the linearizable resharding primitive: take every shard's
// data-structure lock in canonical ascending order (the existing
// cross-shard discipline, so no shard-local operation can commit
// anywhere meanwhile), migrate the re-owned keys, publish the new ring,
// and release in reverse order. In-flight operations that routed on the
// old ring fail their ownership validation and retry on the new one.
func (e *Elastic) reshape(th *memsim.Thread, old, next *route.Ring, from, to int) (int, error) {
	for _, fw := range e.shards {
		fw.Lock().Lock(th)
	}
	if e.table.Load() != old {
		for i := len(e.shards) - 1; i >= 0; i-- {
			e.shards[i].Lock().Unlock(th)
		}
		return 0, ErrStaleTopology
	}
	moved := e.migrate(th, from, to, old, next)
	e.table.Publish(next)
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].Lock().Unlock(th)
	}
	e.movedKeys.Add(uint64(moved))
	return moved, nil
}

// Topology is a point-in-time plain-data view of an Elastic engine's
// routing state, served by /debug/shards and hcfstat.
type Topology struct {
	Name        string         `json:"name"`
	Ring        route.Snapshot `json:"ring"`
	Provisioned int            `json:"provisioned"`
	Splits      uint64         `json:"splits"`
	Merges      uint64         `json:"merges"`
	MovedKeys   uint64         `json:"moved_keys"`
	Reroutes    uint64         `json:"reroutes"`
	ShardOps    []uint64       `json:"shard_ops"`
	CrossOps    uint64         `json:"cross_ops"`
}

// Topology snapshots the live routing state. Safe to call concurrently
// with traffic and resharding (counters are atomic, the ring immutable).
func (e *Elastic) Topology() Topology {
	return Topology{
		Name:        e.name,
		Ring:        e.table.Load().Snapshot(),
		Provisioned: len(e.shards),
		Splits:      e.splits.Load(),
		Merges:      e.merges.Load(),
		MovedKeys:   e.movedKeys.Load(),
		Reroutes:    e.reroutes.Load(),
		ShardOps:    e.ShardOps(),
		CrossOps:    e.CrossOps(),
	}
}

// Reroutes returns how many in-flight operations had to re-route
// because a Split/Merge moved their key mid-execution.
func (e *Elastic) Reroutes() uint64 { return e.reroutes.Load() }
