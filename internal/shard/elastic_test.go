package shard

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/route"
	"hcf/internal/seq/hashtable"
	"hcf/internal/witness"
)

// buildElastic constructs an elastic engine over maxShards hashtable
// shards, starting with `initial` active.
func buildElastic(t *testing.T, env memsim.Env, maxShards, initial int) (*Elastic, []*hashtable.Table) {
	t.Helper()
	boot := env.Boot()
	tables := make([]*hashtable.Table, maxShards)
	for i := range tables {
		tables[i] = hashtable.New(boot, 16)
	}
	e, err := NewElastic(env, ElasticConfig{
		MaxShards: maxShards,
		Initial:   initial,
		Slots:     64,
		Key:       hashtable.RouteKey,
		Bind:      bindTables(tables),
		Migrate:   migrateTables(tables),
		Policies:  policies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tables
}

func bindTables(tables []*hashtable.Table) func(op engine.Op, si int) engine.Op {
	return func(op engine.Op, si int) engine.Op {
		switch o := op.(type) {
		case hashtable.FindOp:
			o.T = tables[si]
			return o
		case hashtable.InsertOp:
			o.T = tables[si]
			return o
		case hashtable.RemoveOp:
			o.T = tables[si]
			return o
		}
		return op
	}
}

func migrateTables(tables []*hashtable.Table) MigrateFunc {
	return func(ctx memsim.Ctx, from, to int, old, next *route.Ring) int {
		return hashtable.MigrateTables(ctx, tables, from, next)
	}
}

func TestElasticConfigValidation(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2})
	tables := []*hashtable.Table{hashtable.New(env.Boot(), 16)}
	base := ElasticConfig{
		MaxShards: 1,
		Key:       hashtable.RouteKey,
		Bind:      bindTables(tables),
		Migrate:   migrateTables(tables),
		Policies:  policies(),
	}
	bad := base
	bad.MaxShards = 0
	if _, err := NewElastic(env, bad); err == nil {
		t.Error("MaxShards=0 accepted")
	}
	bad = base
	bad.Key = nil
	if _, err := NewElastic(env, bad); err == nil {
		t.Error("nil Key accepted")
	}
	bad = base
	bad.Bind = nil
	if _, err := NewElastic(env, bad); err == nil {
		t.Error("nil Bind accepted")
	}
	bad = base
	bad.Migrate = nil
	if _, err := NewElastic(env, bad); err == nil {
		t.Error("nil Migrate accepted")
	}
	bad = base
	bad.Initial = 2
	if _, err := NewElastic(env, bad); err == nil {
		t.Error("Initial > MaxShards accepted")
	}
	e, err := NewElastic(env, base)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "HCF-E" {
		t.Errorf("default name %q, want HCF-E", e.Name())
	}
	if e.NumShards() != 1 {
		t.Errorf("NumShards = %d, want 1 (provisioned)", e.NumShards())
	}
}

// TestSplitMergeNoLostKeys is the zero-lost/zero-duplicated-keys gate:
// populate, split twice, merge back, and require the exact same key set
// with the exact same values, each key present in exactly one table —
// the table the final ring routes it to.
func TestSplitMergeNoLostKeys(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2, Seed: 1})
	e, tables := buildElastic(t, env, 4, 1)
	const keys = 200
	env.Run(func(th *memsim.Thread) {
		if th.ID() != 0 {
			return
		}
		for k := uint64(0); k < keys; k++ {
			e.Execute(th, hashtable.InsertOp{Key: k, Val: k * 3})
		}
		check := func(when string) {
			ring := e.Table().Load()
			seen := make(map[uint64]uint64)
			for i, tbl := range tables {
				tbl.Iterate(th, func(k, v uint64) bool {
					if _, dup := seen[k]; dup {
						t.Errorf("%s: key %d present in two tables", when, k)
					}
					seen[k] = v
					if ring.Owner(k) != i {
						t.Errorf("%s: key %d lives in table %d, ring owner %d", when, k, i, ring.Owner(k))
					}
					return true
				})
			}
			if len(seen) != keys {
				t.Errorf("%s: %d keys present, want %d", when, len(seen), keys)
			}
			for k, v := range seen {
				if v != k*3 {
					t.Errorf("%s: key %d has value %d, want %d", when, k, v, k*3)
				}
			}
		}
		check("initial")

		to, moved, err := e.Split(th, 0)
		if err != nil {
			t.Fatal(err)
		}
		if to != 1 || moved == 0 {
			t.Fatalf("first split: to=%d moved=%d", to, moved)
		}
		check("after split 0")

		if _, _, err := e.Split(th, 0); err != nil {
			t.Fatal(err)
		}
		check("after split 0 again")

		if _, err := e.Merge(th, 2, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Merge(th, 1, 0); err != nil {
			t.Fatal(err)
		}
		if e.Table().Load().Active() != 1 {
			t.Fatalf("active = %d after merges", e.Table().Load().Active())
		}
		check("after merges")

		top := e.Topology()
		if top.Splits != 2 || top.Merges != 2 {
			t.Errorf("topology counts splits=%d merges=%d", top.Splits, top.Merges)
		}
		if top.MovedKeys == 0 {
			t.Error("topology reports no moved keys")
		}
		if top.Ring.Epoch != 4 {
			t.Errorf("ring epoch %d, want 4", top.Ring.Epoch)
		}
	})
}

// runElasticMixed drives a mixed keyed + cross-shard workload; thread 0
// additionally injects a split and a merge mid-run.
func runElasticMixed(env memsim.Env, e *Elastic, tables []*hashtable.Table, perThread int) int {
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID())+1, 77))
		for i := 0; i < perThread; i++ {
			if th.ID() == 0 && i == perThread/3 {
				e.Split(th, hottestActive(e))
			}
			if th.ID() == 0 && i == 2*perThread/3 {
				ring := e.Table().Load()
				// Merge the most recently activated shard back into 0.
				for s := ring.NumShards() - 1; s > 0; s-- {
					if ring.SlotCount(s) > 0 {
						e.Merge(th, s, 0)
						break
					}
				}
			}
			if rng.Uint64N(100) < 5 {
				e.Execute(th, hashtable.SumAllOp{Tables: tables})
				continue
			}
			k := rng.Uint64N(64)
			switch rng.IntN(3) {
			case 0:
				e.Execute(th, hashtable.InsertOp{Key: k, Val: k})
			case 1:
				e.Execute(th, hashtable.FindOp{Key: k})
			default:
				e.Execute(th, hashtable.RemoveOp{Key: k})
			}
		}
	})
	return env.NumThreads() * perThread
}

func hottestActive(e *Elastic) int {
	ring := e.Table().Load()
	ops := e.ShardOps()
	best, bestOps := 0, uint64(0)
	for i, n := range ops {
		if ring.SlotCount(i) > 1 && n >= bestOps {
			best, bestOps = i, n
		}
	}
	return best
}

// TestElasticWitnessUnderExploredSchedules is the resharding
// linearizability gate the ISSUE asks for: across adversarially
// perturbed schedules, concurrent shard-local ops + cross-shard scans +
// an injected online split and merge must produce a witness that
// replays cleanly against the sequential model. Keys must route
// correctly before, during and after each topology change.
func TestElasticWitnessUnderExploredSchedules(t *testing.T) {
	const seeds = 25
	for seed := uint64(0); seed < seeds; seed++ {
		env := memsim.NewDet(memsim.DetConfig{
			Threads: 6,
			Seed:    seed,
			Explore: memsim.ExploreConfig{Seed: seed, PreemptBudget: 48, JitterClass: 2},
		})
		e, tables := buildElastic(t, env, 4, 2)
		rec := &witness.Recorder{}
		e.SetWitness(rec.Func())
		n := runElasticMixed(env, e, tables, 40)
		if err := witness.Check(rec, &shardedModel{m: map[uint64]uint64{}}, n, insertsLast); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestElasticDeterministicReplay pins byte-for-byte witness determinism
// with resharding in the schedule.
func TestElasticDeterministicReplay(t *testing.T) {
	run := func() []witness.Entry {
		env := memsim.NewDet(memsim.DetConfig{Threads: 5, Seed: 3})
		e, tables := buildElastic(t, env, 4, 2)
		rec := &witness.Recorder{}
		e.SetWitness(rec.Func())
		runElasticMixed(env, e, tables, 30)
		return rec.Entries()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay recorded %d entries vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Stamp != b[i].Stamp || a[i].Result != b[i].Result {
			t.Fatalf("entry %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRebalancerSplitsHotShard drives a skewed workload (every key
// owned by shard 0 of the initial two) and requires the rebalancer to
// split the hot shard, journaling the decision with its evidence.
func TestRebalancerSplitsHotShard(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 4, Seed: 2})
	e, _ := buildElastic(t, env, 4, 2)
	rb := NewRebalancer(e, RebalanceConfig{SplitRatio: 1.5, MinOps: 50, Cooldown: 1})
	// Hot key set: everything the initial ring routes to shard 0.
	var hot []uint64
	for k := uint64(0); k < 256; k++ {
		if e.Table().Load().Owner(k) == 0 {
			hot = append(hot, k)
		}
	}
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID())+1, 9))
		for i := 0; i < 150; i++ {
			k := hot[rng.IntN(len(hot))]
			e.Execute(th, hashtable.InsertOp{Key: k, Val: k})
			if th.ID() == 0 && i%50 == 49 {
				rb.Step(th)
			}
		}
	})
	ds := rb.Decisions()
	if len(ds) == 0 {
		t.Fatal("no decisions journaled")
	}
	split := false
	for _, d := range ds {
		if d.Action == "split" {
			split = true
			if d.Reason != "hot-shard" || d.From < 0 || d.To < 0 || len(d.WindowOps) != 4 {
				t.Errorf("split decision malformed: %+v", d)
			}
		}
	}
	if !split {
		t.Fatalf("rebalancer never split; journal:\n%v", ds)
	}
	if e.Table().Load().Active() < 2 {
		t.Error("ring still has one active shard after split")
	}
}

// TestRebalancerJournalDeterminism is the ISSUE's determinism satellite:
// the rebalancer's serialized journal must be byte-identical across two
// runs with the same seed, and differ for a different seed (the journal
// actually depends on the traffic).
func TestRebalancerJournalDeterminism(t *testing.T) {
	run := func(seed uint64) []byte {
		env := memsim.NewDet(memsim.DetConfig{Threads: 4, Seed: seed})
		e, _ := buildElastic(t, env, 4, 2)
		rb := NewRebalancer(e, RebalanceConfig{MinOps: 50, Cooldown: 1})
		env.Run(func(th *memsim.Thread) {
			rng := rand.New(rand.NewPCG(uint64(th.ID())+seed, 9))
			for i := 0; i < 120; i++ {
				k := rng.Uint64N(1 << 30)
				e.Execute(th, hashtable.FindOp{Key: k})
				if th.ID() == 0 && i%40 == 39 {
					rb.Step(th)
				}
			}
		})
		j, err := rb.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a1, a2, b := run(1), run(1), run(7)
	if !bytes.Equal(a1, a2) {
		t.Fatalf("journal not byte-identical for same seed:\n%s\nvs\n%s", a1, a2)
	}
	if bytes.Equal(a1, b) {
		t.Error("journals identical across different seeds — journal ignores traffic?")
	}
	if !strings.Contains(string(a1), `"window_ops"`) {
		t.Error("journal entries missing evidence fields")
	}
}

// TestSplitErrors pins the error surface: no spare shard, stale
// topology handled by callers.
func TestSplitErrors(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2, Seed: 1})
	e, _ := buildElastic(t, env, 2, 2)
	env.Run(func(th *memsim.Thread) {
		if th.ID() != 0 {
			return
		}
		if _, _, err := e.Split(th, 0); err != ErrNoSpareShard {
			t.Errorf("Split with no spare: %v, want ErrNoSpareShard", err)
		}
		if _, err := e.Merge(th, 1, 0); err != nil {
			t.Errorf("Merge failed: %v", err)
		}
		if _, _, err := e.Split(th, 0); err != nil {
			t.Errorf("Split after merge failed: %v", err)
		}
	})
}
