package shard

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"

	"hcf/internal/memsim"
	"hcf/internal/route"
)

// RebalanceConfig tunes the hot-shard feedback loop. Zero values select
// the defaults.
type RebalanceConfig struct {
	// SplitRatio: split the hottest shard when its share of the
	// window's operations exceeds SplitRatio × its fair (slot-weighted)
	// share. Default 2.0.
	SplitRatio float64
	// MinShare: additionally require the hottest shard to carry at
	// least this absolute fraction of the window's operations before
	// splitting it. SplitRatio alone measures *imbalance*, and fair
	// share shrinks as shards activate — without a floor a healthy
	// topology with, say, 7 active shards would keep splitting any
	// shard above 2/7 of traffic, paying a lock-the-world migration to
	// fix a distribution that was never a bottleneck. Default 0.5 (only
	// a shard carrying the majority of all traffic is split); set very
	// small (not zero) to split on pure imbalance.
	MinShare float64
	// MergeRatio: merge the coldest split-created shard back into its
	// hottest peer when BOTH see less than MergeRatio × fair share.
	// Default 0 (merging disabled) — healing only ever adds capacity
	// unless the operator opts into shrinking.
	MergeRatio float64
	// MinOps: ignore windows with fewer total completed operations
	// (cold or warming up). Default 2000.
	MinOps uint64
	// Cooldown: windows to wait after a split/merge before acting
	// again, letting re-routed traffic settle. Default 2.
	Cooldown int
}

func (c *RebalanceConfig) normalize() {
	if c.SplitRatio == 0 {
		c.SplitRatio = 2.0
	}
	if c.MinShare == 0 {
		c.MinShare = 0.5
	}
	if c.MinOps == 0 {
		c.MinOps = 2000
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2
	}
}

// RebalanceDecision is one journal entry: what the rebalancer did (or
// declined to do) in one sampling window, with the evidence it acted
// on. Entries are deterministic per (seed, config): the sampler runs at
// fixed simulated times over deterministic per-shard counters.
type RebalanceDecision struct {
	// Window is the sampling-window ordinal (1-based).
	Window int `json:"window"`
	// Now is the simulated time at the decision.
	Now int64 `json:"now"`
	// Action is "split", "merge" or "hold".
	Action string `json:"action"`
	// Reason is a short machine-stable explanation ("hot-shard",
	// "below-min-ops", "cooldown", "no-spare", "balanced", ...).
	Reason string `json:"reason"`
	// From and To are the shards acted on (-1 when Action is "hold").
	From int `json:"from"`
	To   int `json:"to"`
	// Epoch is the ring epoch after the action (before, for "hold").
	Epoch uint64 `json:"epoch"`
	// MovedKeys is the number of keys migrated by the action.
	MovedKeys int `json:"moved_keys"`
	// Evidence: the window's per-shard operation counts, the hottest
	// shard's observed and fair shares, and the window total.
	WindowOps    []uint64 `json:"window_ops"`
	TotalOps     uint64   `json:"total_ops"`
	HottestShare float64  `json:"hottest_share"`
	FairShare    float64  `json:"fair_share"`
}

// Rebalancer closes the loop between the per-shard metrics and the
// elastic topology: sample per-shard operation deltas each window,
// detect a hot shard, split it (or merge cold split-created shards
// back). Drive it from ONE thread at deterministic instants —
// typically the harness's thread-0 sampling tick — so its decision
// journal is replayable byte-for-byte per seed, in the same spirit as
// adaptive.Tuner's journal (ROADMAP item 4).
type Rebalancer struct {
	e       *Elastic
	cfg     RebalanceConfig
	initial int // active shards at attach time; merges never shrink below this
	last    []uint64
	window  int
	cool    int
	journal atomic.Pointer[[]RebalanceDecision]
}

// NewRebalancer attaches a rebalancer to e.
func NewRebalancer(e *Elastic, cfg RebalanceConfig) *Rebalancer {
	cfg.normalize()
	return &Rebalancer{
		e:       e,
		cfg:     cfg,
		initial: e.table.Load().Active(),
		last:    e.ShardOps(),
	}
}

// Step samples one window and, if the evidence warrants, splits the
// hottest shard or merges the coldest split-created pair. It returns
// the decision it journaled. Call from a single thread.
func (rb *Rebalancer) Step(th *memsim.Thread) RebalanceDecision {
	rb.window++
	cur := rb.e.ShardOps()
	ring := rb.e.table.Load()
	d := RebalanceDecision{
		Window:    rb.window,
		Now:       th.Now(),
		Action:    "hold",
		From:      -1,
		To:        -1,
		Epoch:     ring.Epoch(),
		WindowOps: make([]uint64, len(cur)),
	}
	hot, hotOps := -1, uint64(0)
	for i := range cur {
		w := cur[i] - rb.last[i]
		d.WindowOps[i] = w
		d.TotalOps += w
		if ring.SlotCount(i) > 0 && w > hotOps {
			hot, hotOps = i, w
		}
	}
	rb.last = cur

	d.FairShare = 1.0 / float64(ring.Active())
	if d.TotalOps > 0 && hot >= 0 {
		d.HottestShare = float64(hotOps) / float64(d.TotalOps)
	}

	switch {
	case rb.cool > 0:
		rb.cool--
		d.Reason = "cooldown"
	case d.TotalOps < rb.cfg.MinOps:
		d.Reason = "below-min-ops"
	case hot >= 0 && d.HottestShare > rb.cfg.SplitRatio*d.FairShare &&
		d.HottestShare >= rb.cfg.MinShare:
		rb.decideSplit(th, hot, &d)
	case rb.cfg.MergeRatio > 0 && ring.Active() > rb.initial:
		rb.decideMerge(th, ring, &d)
		if d.Action == "hold" && d.Reason == "" {
			d.Reason = "balanced"
		}
	default:
		d.Reason = "balanced"
	}
	rb.append(d)
	return d
}

func (rb *Rebalancer) decideSplit(th *memsim.Thread, hot int, d *RebalanceDecision) {
	to, moved, err := rb.e.Split(th, hot)
	switch {
	case err == ErrNoSpareShard:
		d.Reason = "no-spare"
	case err != nil:
		// Single-slot shard or concurrent topology change: journal the
		// evidence and hold.
		d.Reason = "split-failed"
	default:
		d.Action, d.Reason = "split", "hot-shard"
		d.From, d.To = hot, to
		d.MovedKeys = moved
		d.Epoch = rb.e.table.Load().Epoch()
		rb.cool = rb.cfg.Cooldown
	}
}

// decideMerge folds the coldest above-initial shard into the coldest of
// the remaining active shards when both are under MergeRatio × fair.
func (rb *Rebalancer) decideMerge(th *memsim.Thread, ring *route.Ring, d *RebalanceDecision) {
	cold1, cold2 := -1, -1
	var w1, w2 uint64
	for i, w := range d.WindowOps {
		if ring.SlotCount(i) == 0 {
			continue
		}
		switch {
		case cold1 < 0 || w < w1:
			cold1, w1, cold2, w2 = i, w, cold1, w1
		case cold2 < 0 || w < w2:
			cold2, w2 = i, w
		}
	}
	if cold1 < 0 || cold2 < 0 {
		return
	}
	limit := rb.cfg.MergeRatio * d.FairShare * float64(d.TotalOps)
	if float64(w1) >= limit || float64(w2) >= limit {
		return
	}
	moved, err := rb.e.Merge(th, cold1, cold2)
	if err != nil {
		d.Reason = "merge-failed"
		return
	}
	d.Action, d.Reason = "merge", "cold-shards"
	d.From, d.To = cold1, cold2
	d.MovedKeys = moved
	d.Epoch = rb.e.table.Load().Epoch()
	rb.cool = rb.cfg.Cooldown
}

// append is single-writer copy-on-write (same discipline as
// adaptive.Journal): readers snapshot lock-free.
func (rb *Rebalancer) append(d RebalanceDecision) {
	var cur []RebalanceDecision
	if p := rb.journal.Load(); p != nil {
		cur = *p
	}
	next := make([]RebalanceDecision, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = d
	rb.journal.Store(&next)
}

// Decisions returns the journal entries in order.
func (rb *Rebalancer) Decisions() []RebalanceDecision {
	if p := rb.journal.Load(); p != nil {
		return *p
	}
	return nil
}

// JSON renders the journal as a deterministic JSON array (the
// byte-identical-per-seed replay artifact).
func (rb *Rebalancer) JSON() ([]byte, error) {
	ds := rb.Decisions()
	if ds == nil {
		ds = []RebalanceDecision{}
	}
	return json.MarshalIndent(ds, "", "  ")
}

// Text renders the journal's actions for human consumption.
func (rb *Rebalancer) Text() string {
	var b strings.Builder
	for _, d := range rb.Decisions() {
		if d.Action == "hold" {
			continue
		}
		fmt.Fprintf(&b, "w%03d t=%d %s %d→%d moved=%d hottest=%.0f%% (fair %.0f%%) epoch=%d\n",
			d.Window, d.Now, d.Action, d.From, d.To, d.MovedKeys,
			100*d.HottestShare, 100*d.FairShare, d.Epoch)
	}
	return b.String()
}
