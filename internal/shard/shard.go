// Package shard runs N independent HCF frameworks over one environment,
// routing each operation to the framework owning its shard. Independent
// combiners then run in parallel on disjoint shards — each shard has its
// own data-structure lock, publication arrays and selection locks — which
// lifts the single-lock/single-combiner ceiling of one framework (the
// "inherent limitations" argument: shrinking the shared conflict footprint
// is the only way past it).
//
// Operations the router cannot confine to one shard (CrossShard) take a
// pessimistic cross-shard path: the thread acquires every shard's
// data-structure lock in canonical (ascending index) order, applies the
// operation directly, and releases in reverse order. This is deadlock-free
// because shard-local execution only ever takes its own shard's locks, and
// all cross-shard operations use the same global acquisition order. It is
// linearizable because every shard-local path either holds the shard lock
// or runs a transaction subscribed to it: while the cross-shard operation
// holds all locks, no shard-local operation can commit anywhere, so the
// lock-stamped witness point is totally ordered against all shard-local
// serialization stamps.
package shard

import (
	"fmt"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/memsim"
	"hcf/internal/route"
)

// Router maps an operation to the shard that owns it, or CrossShard for
// operations spanning shards. It must be deterministic and cheap: it runs
// on every Execute, and an operation must resolve to the same shard for
// its whole lifetime.
type Router func(op engine.Op) int

// KeyFunc extracts an operation's routing key. ok=false marks an
// operation that spans shards (it runs on the all-locks cross-shard
// path). Engines that route by key share one audited key→shard map (the
// internal/route ring) instead of N hand-written mod-N closures.
type KeyFunc func(op engine.Op) (key uint64, ok bool)

// CrossShard is the Router return value for operations that cannot be
// confined to one shard; they run on the all-locks pessimistic path.
const CrossShard = -1

// Config configures a Sharded engine. Policies, HoldSelectionLock, HTM
// and ExtraArrays are applied to every per-shard framework (budgets stay
// independently adjustable per shard afterwards via Shard).
//
// Routing is configured in exactly one of two ways: a Router closure
// (full control, legacy), or a Key extractor plus an optional Ring —
// key-routed engines look the owner up on a consistent-hash ring
// (route.NewUniform over Shards when Ring is nil), which is the shared,
// audited key→shard map and the prerequisite for elastic resharding.
type Config struct {
	// Shards is the number of frameworks; must be >= 1.
	Shards int
	// Router maps operations to shards; mutually exclusive with Key.
	Router Router
	// Key extracts the routing key; mutually exclusive with Router.
	Key KeyFunc
	// Ring overrides the consistent-hash topology used with Key
	// (default: route.NewUniform(Shards, 0, Shards)). Ignored with
	// Router. Must have NumShards() == Shards.
	Ring *route.Ring
	// Policies, indexed by Op.Class(), must be non-empty.
	Policies []core.Policy
	// HoldSelectionLock selects the specialized HCF variant (§2.4).
	HoldSelectionLock bool
	// HTM configures each shard's transactional engine.
	HTM htm.Config
	// Name overrides the engine name (default "HCF-S").
	Name string
	// ExtraArrays provisions spare publication arrays per shard.
	ExtraArrays int
}

// threadMetrics pads per-thread cross-path counters against false sharing.
type threadMetrics struct {
	m engine.Metrics
	_ [40]byte
}

// Sharded is N core.Frameworks over one Env behind the engine.Engine
// interface.
type Sharded struct {
	shards []*core.Framework
	router Router
	ring   *route.Ring // non-nil iff key-routed (static topology)
	name   string
	// per holds the cross-shard path's counters; shard-local operations
	// are counted by their framework.
	per     []threadMetrics
	witness engine.WitnessFunc
	rec     engine.Recorder
}

var (
	_ engine.Engine          = (*Sharded)(nil)
	_ engine.WitnessedEngine = (*Sharded)(nil)
	_ engine.MeteredEngine   = (*Sharded)(nil)
)

// newShards provisions n per-shard frameworks and the cross-path
// counters; routing is the caller's concern (New wires a Router or a
// static ring, Elastic wires its epoch-published table).
func newShards(env memsim.Env, cfg Config, n int, name string) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: Shards must be >= 1, got %d", n)
	}
	s := &Sharded{
		name: name,
		per:  make([]threadMetrics, env.NumThreads()+1),
	}
	for i := 0; i < n; i++ {
		fw, err := core.New(env, core.Config{
			Policies:          cfg.Policies,
			HoldSelectionLock: cfg.HoldSelectionLock,
			HTM:               cfg.HTM,
			Name:              fmt.Sprintf("%s/%d", name, i),
			ExtraArrays:       cfg.ExtraArrays,
		})
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, fw)
	}
	return s, nil
}

// New builds a Sharded engine over env.
func New(env memsim.Env, cfg Config) (*Sharded, error) {
	if (cfg.Router == nil) == (cfg.Key == nil) {
		return nil, fmt.Errorf("shard: exactly one of Router and Key must be set")
	}
	name := cfg.Name
	if name == "" {
		name = "HCF-S"
	}
	s, err := newShards(env, cfg, cfg.Shards, name)
	if err != nil {
		return nil, err
	}
	if cfg.Router != nil {
		s.router = cfg.Router
		return s, nil
	}
	ring := cfg.Ring
	if ring == nil {
		if ring, err = route.NewUniform(cfg.Shards, 0, cfg.Shards); err != nil {
			return nil, err
		}
	}
	if ring.NumShards() != cfg.Shards {
		return nil, fmt.Errorf("shard: ring spans %d shards, engine has %d", ring.NumShards(), cfg.Shards)
	}
	key := cfg.Key
	s.ring = ring
	s.router = func(op engine.Op) int {
		k, ok := key(op)
		if !ok {
			return CrossShard
		}
		return ring.Owner(k)
	}
	return s, nil
}

// Ring returns the static consistent-hash topology of a key-routed
// engine, or nil for Router-based engines (and for Elastic, whose
// topology is dynamic — see Elastic.Topology).
func (s *Sharded) Ring() *route.Ring { return s.ring }

// Name returns the engine name.
func (s *Sharded) Name() string { return s.name }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard exposes shard i's framework (budget tuning, statistics, tests).
func (s *Sharded) Shard(i int) *core.Framework { return s.shards[i] }

// Execute routes op to its shard's framework, or over the cross-shard
// path when the router returns CrossShard.
func (s *Sharded) Execute(th *memsim.Thread, op engine.Op) uint64 {
	if i := s.router(op); i != CrossShard {
		return s.shards[i].Execute(th, op)
	}
	return s.executeCross(th, op)
}

// executeCross applies op while holding every shard's data-structure lock,
// acquired in canonical ascending order and released in reverse.
func (s *Sharded) executeCross(th *memsim.Thread, op engine.Op) uint64 {
	t := th.ID()
	tm := &s.per[t].m
	var start int64
	if s.rec != nil {
		start = th.Now()
	}
	for _, fw := range s.shards {
		fw.Lock().Lock(th)
	}
	tm.LockAcquisitions++
	var holdStart int64
	if s.rec != nil {
		holdStart = th.Now()
	}
	res := op.Apply(th)
	if s.witness != nil {
		// All shard locks are held, so the lock stamp is totally ordered
		// against every shard-local serialization stamp (see package doc).
		s.witness(htm.LockStamp(th), 0, op, res)
	}
	if s.rec != nil {
		s.rec.RecordLockHold(t, th.Now()-holdStart)
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].Lock().Unlock(th)
	}
	tm.Ops++
	if s.rec != nil {
		s.rec.RecordOp(t, op.Class(), core.NumPhases, th.Now()-start)
	}
	return res
}

// SetWitness installs a serialization-witness observer on every shard and
// on the cross-shard path (nil disables).
func (s *Sharded) SetWitness(fn engine.WitnessFunc) {
	s.witness = fn
	for _, fw := range s.shards {
		fw.SetWitness(fn)
	}
}

// SetRecorder installs a latency/counter recorder on every shard and on
// the cross-shard path (nil disables). Shard-local operations record their
// completion phase as the path index; cross-shard operations record path
// core.NumPhases (labelled engine.PathCross).
func (s *Sharded) SetRecorder(rec engine.Recorder) {
	s.rec = rec
	for _, fw := range s.shards {
		fw.SetRecorder(rec)
	}
}

// SetShardRecorders installs a distinct recorder on each shard plus one on
// the cross-shard path, so a grouped recorder (metrics.Config.Groups) can
// break activity out per shard instead of blending all shards through one
// sink. perShard must have one entry per shard (nil entries disable that
// shard's recording); cross may be nil.
func (s *Sharded) SetShardRecorders(perShard []engine.Recorder, cross engine.Recorder) error {
	if len(perShard) != len(s.shards) {
		return fmt.Errorf("shard: got %d recorders for %d shards", len(perShard), len(s.shards))
	}
	s.rec = cross
	for i, fw := range s.shards {
		fw.SetRecorder(perShard[i])
	}
	return nil
}

// CompletionPaths implements engine.MeteredEngine: the four HCF phases
// plus the cross-shard path.
func (s *Sharded) CompletionPaths() []string {
	return []string{
		core.PhaseTryPrivate.String(),
		core.PhaseTryVisible.String(),
		core.PhaseTryCombining.String(),
		core.PhaseCombineUnderLock.String(),
		engine.PathCross,
	}
}

// Metrics aggregates all shards' counters plus the cross-shard path's.
func (s *Sharded) Metrics() engine.Metrics {
	var m engine.Metrics
	for i := range s.per {
		m.Merge(&s.per[i].m)
	}
	for _, fw := range s.shards {
		fm := fw.Metrics()
		m.Merge(&fm)
	}
	return m
}

// ResetMetrics zeroes all counters on every shard and the cross path.
func (s *Sharded) ResetMetrics() {
	for i := range s.per {
		s.per[i].m = engine.Metrics{}
	}
	for _, fw := range s.shards {
		fw.ResetMetrics()
	}
}

// PhaseBreakdown merges the shards' per-class phase completion counts.
// Cross-shard operations complete outside the four phases and are not
// included; their count is CrossOps.
func (s *Sharded) PhaseBreakdown() [][core.NumPhases]uint64 {
	var out [][core.NumPhases]uint64
	for _, fw := range s.shards {
		pb := fw.PhaseBreakdown()
		if out == nil {
			out = make([][core.NumPhases]uint64, len(pb))
		}
		for c := range pb {
			for p := range pb[c] {
				out[c][p] += pb[c][p]
			}
		}
	}
	return out
}

// CrossOps returns how many operations completed on the cross-shard path.
func (s *Sharded) CrossOps() uint64 {
	var n uint64
	for i := range s.per {
		n += s.per[i].m.Ops
	}
	return n
}

// ShardOps returns the cumulative completed-operation count per shard —
// the load signal the Rebalancer samples to find hot shards.
func (s *Sharded) ShardOps() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, fw := range s.shards {
		out[i] = fw.Metrics().Ops
	}
	return out
}
