package shard

import (
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/seq/hashtable"
	"hcf/internal/witness"
)

func policies() []core.Policy { return hashtable.Policies() }

func keyRouter(shards int) Router {
	return func(op engine.Op) int {
		switch o := op.(type) {
		case hashtable.FindOp:
			return int(o.Key % uint64(shards))
		case hashtable.InsertOp:
			return int(o.Key % uint64(shards))
		case hashtable.RemoveOp:
			return int(o.Key % uint64(shards))
		default:
			return CrossShard
		}
	}
}

func TestConfigValidation(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2})
	if _, err := New(env, Config{Shards: 0, Router: keyRouter(1), Policies: policies()}); err == nil || !strings.Contains(err.Error(), "Shards") {
		t.Errorf("zero shards accepted: %v", err)
	}
	if _, err := New(env, Config{Shards: 2, Policies: policies()}); err == nil || !strings.Contains(err.Error(), "Router") {
		t.Errorf("nil router accepted: %v", err)
	}
	s, err := New(env, Config{Shards: 3, Router: keyRouter(3), Policies: policies()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "HCF-S" {
		t.Errorf("default name %q, want HCF-S", s.Name())
	}
	if s.NumShards() != 3 {
		t.Errorf("NumShards = %d, want 3", s.NumShards())
	}
	for i := 0; i < 3; i++ {
		if s.Shard(i) == nil {
			t.Fatalf("Shard(%d) is nil", i)
		}
	}
	if got := s.Shard(1).Name(); got != "HCF-S/1" {
		t.Errorf("shard 1 name %q, want HCF-S/1", got)
	}
}

func TestCompletionPaths(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2})
	s, err := New(env, Config{Shards: 2, Router: keyRouter(2), Policies: policies()})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"TryPrivate", "TryVisible", "TryCombining", "CombineUnderLock", engine.PathCross}
	if got := s.CompletionPaths(); !reflect.DeepEqual(got, want) {
		t.Errorf("CompletionPaths = %v, want %v", got, want)
	}
}

// buildSharded constructs a sharded engine plus its tables over env.
func buildSharded(t *testing.T, env memsim.Env, shards int) (*Sharded, []*hashtable.Table) {
	t.Helper()
	boot := env.Boot()
	tables := make([]*hashtable.Table, shards)
	for i := range tables {
		tables[i] = hashtable.New(boot, 16)
	}
	s, err := New(env, Config{Shards: shards, Router: keyRouter(shards), Policies: policies()})
	if err != nil {
		t.Fatal(err)
	}
	return s, tables
}

// runMixed drives a mixed single-key + cross-shard workload and returns ops
// executed.
func runMixed(env memsim.Env, s *Sharded, tables []*hashtable.Table, perThread int) int {
	shards := uint64(len(tables))
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID())+1, 77))
		for i := 0; i < perThread; i++ {
			if rng.Uint64N(100) < 5 {
				s.Execute(th, hashtable.SumAllOp{Tables: tables})
				continue
			}
			k := rng.Uint64N(64)
			tbl := tables[k%shards]
			switch rng.IntN(3) {
			case 0:
				s.Execute(th, hashtable.InsertOp{T: tbl, Key: k, Val: k})
			case 1:
				s.Execute(th, hashtable.FindOp{T: tbl, Key: k})
			default:
				s.Execute(th, hashtable.RemoveOp{T: tbl, Key: k})
			}
		}
	})
	return env.NumThreads() * perThread
}

// TestMetricsAndCrossOps checks that shard-local and cross-shard operations
// are both counted, and that the cross path is actually exercised.
func TestMetricsAndCrossOps(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 6})
	s, tables := buildSharded(t, env, 3)
	n := runMixed(env, s, tables, 50)
	m := s.Metrics()
	if m.Ops != uint64(n) {
		t.Errorf("metrics count %d ops, executed %d", m.Ops, n)
	}
	if s.CrossOps() == 0 {
		t.Error("no operations took the cross-shard path")
	}
	if s.CrossOps() >= uint64(n) {
		t.Errorf("all %d ops went cross-shard", n)
	}
	pb := s.PhaseBreakdown()
	if len(pb) != hashtable.NumClasses {
		t.Fatalf("phase breakdown has %d classes, want %d", len(pb), hashtable.NumClasses)
	}
	var phaseOps uint64
	for _, byPhase := range pb {
		for _, c := range byPhase {
			phaseOps += c
		}
	}
	if phaseOps+s.CrossOps() != uint64(n) {
		t.Errorf("phase completions %d + cross %d != %d executed", phaseOps, s.CrossOps(), n)
	}
	s.ResetMetrics()
	if after := s.Metrics(); after.Ops != 0 {
		t.Errorf("Ops = %d after reset", after.Ops)
	}
	if s.CrossOps() != 0 {
		t.Errorf("CrossOps = %d after reset", s.CrossOps())
	}
}

// shardedModel replays the workload sequentially over one flat map.
type shardedModel struct{ m map[uint64]uint64 }

func (mm *shardedModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case hashtable.FindOp:
		v, ok := mm.m[o.Key]
		return engine.Pack(v, ok)
	case hashtable.InsertOp:
		_, existed := mm.m[o.Key]
		mm.m[o.Key] = o.Val
		return engine.PackBool(!existed)
	case hashtable.RemoveOp:
		_, existed := mm.m[o.Key]
		delete(mm.m, o.Key)
		return engine.PackBool(existed)
	case hashtable.SumAllOp:
		var sum uint64
		for _, v := range mm.m {
			sum += v
		}
		return engine.Pack(sum&((1<<63)-1), true)
	}
	return 0
}

func insertsLast(op engine.Op) int {
	if _, ok := op.(hashtable.InsertOp); ok {
		return 1
	}
	return 0
}

// TestWitnessUnderExploredSchedules is the package's linearizability gate:
// across many adversarially perturbed schedules (forced preemptions +
// priority jitter), every run's serialization witness — shard-local commits
// interleaved with cross-shard all-locks applications — must replay cleanly
// against a sequential model. Two combiners active on different shards is
// the common case at this thread count.
func TestWitnessUnderExploredSchedules(t *testing.T) {
	const seeds = 25
	for seed := uint64(0); seed < seeds; seed++ {
		env := memsim.NewDet(memsim.DetConfig{
			Threads: 6,
			Seed:    seed,
			Explore: memsim.ExploreConfig{Seed: seed, PreemptBudget: 48, JitterClass: 2},
		})
		s, tables := buildSharded(t, env, 3)
		rec := &witness.Recorder{}
		s.SetWitness(rec.Func())
		n := runMixed(env, s, tables, 40)
		if err := witness.Check(rec, &shardedModel{m: map[uint64]uint64{}}, n, insertsLast); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDeterministicReplay pins that two identically configured runs produce
// identical witness recordings entry for entry (the property every repro
// workflow rests on).
func TestDeterministicReplay(t *testing.T) {
	run := func() []witness.Entry {
		env := memsim.NewDet(memsim.DetConfig{Threads: 5, Seed: 3})
		s, tables := buildSharded(t, env, 3)
		rec := &witness.Recorder{}
		s.SetWitness(rec.Func())
		runMixed(env, s, tables, 30)
		return rec.Entries()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay recorded %d entries vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Stamp != b[i].Stamp || a[i].Result != b[i].Result {
			t.Fatalf("entry %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSingleShardMatchesFramework pins that a 1-shard Sharded engine with a
// shard-local-only workload behaves exactly like the framework it wraps:
// same results, same metrics.
func TestSingleShardMatchesFramework(t *testing.T) {
	runOne := func(sharded bool) (uint64, engine.Metrics) {
		env := memsim.NewDet(memsim.DetConfig{Threads: 4, Seed: 9})
		boot := env.Boot()
		tbl := hashtable.New(boot, 16)
		var eng engine.Engine
		if sharded {
			s, err := New(env, Config{Shards: 1, Router: keyRouter(1), Policies: policies()})
			if err != nil {
				t.Fatal(err)
			}
			eng = s
		} else {
			fw, err := core.New(env, core.Config{Policies: policies()})
			if err != nil {
				t.Fatal(err)
			}
			eng = fw
		}
		var sum uint64
		env.Run(func(th *memsim.Thread) {
			rng := rand.New(rand.NewPCG(uint64(th.ID())+1, 5))
			for i := 0; i < 60; i++ {
				k := rng.Uint64N(32)
				switch rng.IntN(3) {
				case 0:
					sum += eng.Execute(th, hashtable.InsertOp{T: tbl, Key: k, Val: k})
				case 1:
					sum += eng.Execute(th, hashtable.FindOp{T: tbl, Key: k})
				default:
					sum += eng.Execute(th, hashtable.RemoveOp{T: tbl, Key: k})
				}
			}
		})
		return sum, eng.Metrics()
	}
	fwSum, fwM := runOne(false)
	shSum, shM := runOne(true)
	if fwSum != shSum {
		t.Errorf("result checksums differ: framework %d, 1-shard %d", fwSum, shSum)
	}
	if !reflect.DeepEqual(fwM, shM) {
		t.Errorf("metrics differ:\nframework %+v\n1-shard   %+v", fwM, shM)
	}
}
