package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hcf/internal/core"
	"hcf/internal/htm"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// flavor Perfetto and chrome://tracing load). Timestamps are microseconds;
// we map one simulated cycle (or one wall nanosecond on the real backend)
// to one microsecond so the UI renders useful scales.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func dur(d int64) *int64 { return &d }

// WriteChrome exports a merged event stream as Chrome trace-event JSON:
// one track per thread, a complete slice per operation span with nested
// phase sub-slices, instant markers for aborts (attributed to the
// conflicting cache line and writer, or the lock holder), and flow arrows
// from each combiner's help edge to the helped operation's span.
func WriteChrome(w io.Writer, events []core.TraceEvent, engine string) error {
	spans := BuildSpans(events)
	seen := map[int]bool{}
	var threads []int
	for _, ev := range events {
		if !seen[ev.Thread] {
			seen[ev.Thread] = true
			threads = append(threads, ev.Thread)
		}
	}
	sort.Ints(threads)

	out := chromeTrace{DisplayTimeUnit: "ms"}
	add := func(ev chromeEvent) { out.TraceEvents = append(out.TraceEvents, ev) }

	add(chromeEvent{
		Name: "process_name", Phase: "M", Pid: 0,
		Args: map[string]any{"name": "hcf " + engine},
	})
	for _, t := range threads {
		add(chromeEvent{
			Name: "thread_name", Phase: "M", Pid: 0, Tid: t,
			Args: map[string]any{"name": fmt.Sprintf("thread %d", t)},
		})
	}

	for i := range spans {
		sp := &spans[i]
		args := map[string]any{
			"span":     fmt.Sprintf("%x", sp.ID),
			"class":    sp.Class,
			"attempts": sp.Attempts,
			"aborts":   sp.Aborts,
			"done_in":  sp.DonePhase.String(),
		}
		if sp.Helped {
			args["helped_by"] = sp.Helper
		}
		if !sp.Complete {
			args["truncated"] = true
		}
		add(chromeEvent{
			Name: fmt.Sprintf("op class=%d", sp.Class), Phase: "X",
			Ts: sp.Start, Dur: dur(sp.End - sp.Start), Pid: 0, Tid: sp.Thread,
			Cat: "op", Args: args,
		})
		// Phase sub-slices nest inside the op slice (same track, contained
		// intervals).
		for _, d := range sp.Dwell {
			add(chromeEvent{
				Name: d.Phase.String(), Phase: "X",
				Ts: d.Start, Dur: dur(d.End - d.Start), Pid: 0, Tid: sp.Thread,
				Cat: "phase",
			})
		}
		// A helped span is the flow target: the arrow lands at its
		// completion, identified by the helped span's id.
		if sp.Helped {
			add(chromeEvent{
				Name: "combined", Phase: "f", BP: "e",
				Ts: sp.End, Pid: 0, Tid: sp.Thread,
				Cat: "combine", ID: fmt.Sprintf("%x", sp.ID),
			})
		}
		// Each help edge is a flow source on the combiner's track.
		for _, h := range sp.Helps {
			add(chromeEvent{
				Name: "combined", Phase: "s",
				Ts: h.At, Pid: 0, Tid: sp.Thread,
				Cat: "combine", ID: fmt.Sprintf("%x", h.PeerSpan),
			})
		}
	}

	// Abort instants with attribution.
	for _, ev := range events {
		if ev.Kind != core.TraceAttempt || ev.Reason == htm.ReasonNone {
			continue
		}
		args := map[string]any{
			"phase":  ev.Phase.String(),
			"reason": ev.Reason.String(),
		}
		switch ev.Reason {
		case htm.ReasonConflict:
			args["line"] = ev.Line
			if ev.Peer >= 0 {
				args["writer"] = ev.Peer
			}
		case htm.ReasonLockHeld:
			if ev.Peer >= 0 {
				args["holder"] = ev.Peer
			}
		}
		add(chromeEvent{
			Name: "abort " + ev.Reason.String(), Phase: "i", Scope: "t",
			Ts: ev.Now, Pid: 0, Tid: ev.Thread, Cat: "abort", Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
