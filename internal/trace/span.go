package trace

import (
	"fmt"
	"sort"
	"strings"

	"hcf/internal/core"
	"hcf/internal/htm"
)

// Dwell is one phase-labeled interval of a span's lifetime.
type Dwell struct {
	Phase core.Phase `json:"-"`
	Start int64      `json:"start"`
	End   int64      `json:"end"`
}

// HelpEdge is a causal combined-by edge recorded on the combiner's span:
// at time At the span's thread completed Peer's operation PeerSpan.
type HelpEdge struct {
	At       int64
	Peer     int
	PeerSpan uint64
	Phase    core.Phase
}

// Span is one reconstructed operation lifecycle: everything a single
// Execute call did, from start to completion, with its time-in-phase
// breakdown and causal edges.
type Span struct {
	// ID is the span id (core.SpanID of the owning thread + sequence).
	ID uint64
	// Thread is the owning thread.
	Thread int
	// Class is the operation class.
	Class int
	// Start and End are the owning thread's local times at TraceStart and
	// at completion.
	Start, End int64
	// DonePhase is the phase the operation completed in.
	DonePhase core.Phase
	// Helped reports whether another thread completed the operation;
	// Helper/HelperSpan then name the combiner and its span (-1/0 for
	// self-completed spans).
	Helped     bool
	Helper     int
	HelperSpan uint64
	// Attempts counts speculative attempts; Aborts counts the failed ones.
	Attempts, Aborts int
	// Dwell is the span's lifetime split into phase-labeled intervals
	// (start→announce = TryPrivate, announce→select = TryVisible,
	// select→lock = TryCombining, lock→done = CombineUnderLock; segments
	// the operation never entered are absent).
	Dwell []Dwell
	// Helps are the operations this span completed for other threads
	// while combining.
	Helps []HelpEdge
	// Events are the span's raw events in emission order.
	Events []core.TraceEvent
	// Complete reports whether both the start and the completion event
	// were retained; spans truncated by the flight-recorder ring are kept
	// but marked incomplete.
	Complete bool
}

// BuildSpans reconstructs operation spans from a merged event stream.
// Spans are returned ordered by (Start, Thread). Spans whose start or
// completion fell outside the flight-recorder window have Complete ==
// false and best-effort bounds.
func BuildSpans(events []core.TraceEvent) []Span {
	byID := make(map[uint64]*Span)
	order := make([]uint64, 0)
	for _, ev := range events {
		if ev.Span == 0 {
			continue
		}
		sp := byID[ev.Span]
		if sp == nil {
			sp = &Span{
				ID:     ev.Span,
				Thread: ev.Thread,
				Start:  ev.Now,
				Helper: -1,
			}
			byID[ev.Span] = sp
			order = append(order, ev.Span)
		}
		sp.Events = append(sp.Events, ev)
		sp.End = ev.Now
		switch ev.Kind {
		case core.TraceStart:
			sp.Class = ev.Class
			sp.Start = ev.Now
		case core.TraceAttempt:
			sp.Attempts++
			if ev.Reason != htm.ReasonNone {
				sp.Aborts++
			}
		case core.TraceDone:
			sp.DonePhase = ev.Phase
		case core.TraceHelped:
			sp.Helped = true
			sp.DonePhase = ev.Phase
			sp.Helper = ev.Peer
			sp.HelperSpan = ev.PeerSpan
		case core.TraceHelp:
			sp.Helps = append(sp.Helps, HelpEdge{
				At: ev.Now, Peer: ev.Peer, PeerSpan: ev.PeerSpan, Phase: ev.Phase,
			})
		}
	}
	out := make([]Span, 0, len(order))
	for _, id := range order {
		sp := byID[id]
		sp.Complete = len(sp.Events) > 0 &&
			sp.Events[0].Kind == core.TraceStart &&
			lastIsCompletion(sp.Events)
		sp.Dwell = segmentDwell(sp)
		out = append(out, *sp)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Thread < out[j].Thread
	})
	return out
}

func lastIsCompletion(evs []core.TraceEvent) bool {
	k := evs[len(evs)-1].Kind
	return k == core.TraceDone || k == core.TraceHelped
}

// segmentDwell splits a span's lifetime into phase-labeled intervals at
// its announce/select/lock boundary events. Baseline engines emit the
// same boundaries under the phase mapping documented in
// internal/engines/trace.go, so the segmentation applies to all six
// engines.
func segmentDwell(sp *Span) []Dwell {
	var out []Dwell
	cur := Dwell{Phase: core.PhaseTryPrivate, Start: sp.Start}
	closeAt := func(now int64, next core.Phase) {
		if now > cur.Start {
			cur.End = now
			out = append(out, cur)
		}
		cur = Dwell{Phase: next, Start: now}
	}
	for _, ev := range sp.Events {
		switch ev.Kind {
		case core.TraceAnnounce:
			closeAt(ev.Now, core.PhaseTryVisible)
		case core.TraceSelect:
			closeAt(ev.Now, core.PhaseTryCombining)
		case core.TraceLock:
			closeAt(ev.Now, core.PhaseCombineUnderLock)
		case core.TraceDone, core.TraceHelped:
			closeAt(ev.Now, ev.Phase)
		}
	}
	return out
}

// LatencyStats summarizes a latency population (virtual cycles on the
// deterministic backend, nanoseconds on the real one).
type LatencyStats struct {
	Count uint64  `json:"count"`
	Min   int64   `json:"min"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
}

func computeLatency(samples []int64) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum int64
	for _, s := range samples {
		sum += s
	}
	pct := func(p float64) int64 {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return LatencyStats{
		Count: uint64(len(samples)),
		Min:   samples[0],
		P50:   pct(0.50),
		P99:   pct(0.99),
		Max:   samples[len(samples)-1],
		Mean:  float64(sum) / float64(len(samples)),
	}
}

// PhaseDwellStats aggregates time spent in one phase across spans.
type PhaseDwellStats struct {
	Phase string  `json:"phase"`
	Spans uint64  `json:"spans"`
	Total int64   `json:"total"`
	Mean  float64 `json:"mean"`
}

// SpanStats is the aggregate span report: how many operations completed
// by themselves vs by a combiner, their end-to-end latency, and where the
// time went.
type SpanStats struct {
	Spans      uint64 `json:"spans"`
	Incomplete uint64 `json:"incomplete"`
	Self       uint64 `json:"self"`
	Helped     uint64 `json:"helped"`
	// HelpEdges counts combined-by edges (operations completed for other
	// threads by combiners).
	HelpEdges uint64 `json:"help_edges"`
	// Attempts / Aborts cover speculative attempts across all spans.
	Attempts uint64 `json:"attempts"`
	Aborts   uint64 `json:"aborts"`
	// SelfLatency / HelpedLatency are end-to-end latencies of complete
	// spans, split by completion mode.
	SelfLatency   LatencyStats `json:"self_latency"`
	HelpedLatency LatencyStats `json:"helped_latency"`
	// Dwell is the per-phase time breakdown over complete spans.
	Dwell []PhaseDwellStats `json:"dwell,omitempty"`
}

// ComputeSpanStats aggregates reconstructed spans.
func ComputeSpanStats(spans []Span) SpanStats {
	var st SpanStats
	var selfLat, helpedLat []int64
	var dwellTotal [core.NumPhases]int64
	var dwellSpans [core.NumPhases]uint64
	for i := range spans {
		sp := &spans[i]
		st.Spans++
		st.Attempts += uint64(sp.Attempts)
		st.Aborts += uint64(sp.Aborts)
		st.HelpEdges += uint64(len(sp.Helps))
		if !sp.Complete {
			st.Incomplete++
			continue
		}
		if sp.Helped {
			st.Helped++
			helpedLat = append(helpedLat, sp.End-sp.Start)
		} else {
			st.Self++
			selfLat = append(selfLat, sp.End-sp.Start)
		}
		var seen [core.NumPhases]bool
		for _, d := range sp.Dwell {
			dwellTotal[d.Phase] += d.End - d.Start
			if !seen[d.Phase] {
				seen[d.Phase] = true
				dwellSpans[d.Phase]++
			}
		}
	}
	st.SelfLatency = computeLatency(selfLat)
	st.HelpedLatency = computeLatency(helpedLat)
	for p := core.Phase(0); p < core.NumPhases; p++ {
		if dwellSpans[p] == 0 {
			continue
		}
		st.Dwell = append(st.Dwell, PhaseDwellStats{
			Phase: p.String(),
			Spans: dwellSpans[p],
			Total: dwellTotal[p],
			Mean:  float64(dwellTotal[p]) / float64(dwellSpans[p]),
		})
	}
	return st
}

// FormatSpanStats renders the span report as text.
func FormatSpanStats(st SpanStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "spans: %d (self %d, helped %d", st.Spans, st.Self, st.Helped)
	if st.Incomplete > 0 {
		fmt.Fprintf(&b, ", %d truncated by flight recorder", st.Incomplete)
	}
	fmt.Fprintf(&b, ")\n")
	fmt.Fprintf(&b, "combined-by edges: %d\n", st.HelpEdges)
	if st.Attempts > 0 {
		fmt.Fprintf(&b, "speculative attempts: %d (%d aborted)\n", st.Attempts, st.Aborts)
	}
	writeLat := func(name string, l LatencyStats) {
		if l.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "%-17s n=%-7d min %-7d p50 %-7d p99 %-7d max %-7d mean %.1f\n",
			name, l.Count, l.Min, l.P50, l.P99, l.Max, l.Mean)
	}
	writeLat("self latency:", st.SelfLatency)
	writeLat("helped latency:", st.HelpedLatency)
	if len(st.Dwell) > 0 {
		fmt.Fprintf(&b, "time in phase (over complete spans):\n")
		for _, d := range st.Dwell {
			fmt.Fprintf(&b, "  %-16s total %-10d mean %-9.1f across %d spans\n",
				d.Phase, d.Total, d.Mean, d.Spans)
		}
	}
	return b.String()
}
