package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hcf/internal/core"
	"hcf/internal/htm"
)

// synthetic stream: thread 0 self-completes with one conflict abort;
// thread 1 announces and is helped by thread 0's second op (a combiner).
func syntheticEvents() []core.TraceEvent {
	s0a := core.SpanID(0, 1)
	s0b := core.SpanID(0, 2)
	s1 := core.SpanID(1, 1)
	return []core.TraceEvent{
		{Thread: 0, Now: 0, Kind: core.TraceStart, Class: 2, Span: s0a, Peer: -1},
		{Thread: 1, Now: 5, Kind: core.TraceStart, Class: 0, Span: s1, Peer: -1},
		{Thread: 0, Now: 10, Kind: core.TraceAttempt, Phase: core.PhaseTryPrivate,
			Reason: htm.ReasonConflict, Span: s0a, Line: 99, Peer: 1},
		{Thread: 1, Now: 12, Kind: core.TraceAttempt, Phase: core.PhaseTryPrivate,
			Reason: htm.ReasonLockHeld, Span: s1, Peer: 0},
		{Thread: 0, Now: 20, Kind: core.TraceAttempt, Phase: core.PhaseTryPrivate,
			Reason: htm.ReasonNone, Span: s0a, Peer: -1},
		{Thread: 0, Now: 20, Kind: core.TraceDone, Phase: core.PhaseTryPrivate, Span: s0a, Peer: -1},
		{Thread: 1, Now: 25, Kind: core.TraceAnnounce, Class: 0, Span: s1, Peer: -1},
		{Thread: 0, Now: 30, Kind: core.TraceStart, Class: 1, Span: s0b, Peer: -1},
		{Thread: 0, Now: 35, Kind: core.TraceAnnounce, Class: 1, Span: s0b, Peer: -1},
		{Thread: 0, Now: 40, Kind: core.TraceSelect, N: 2, Span: s0b, Peer: -1},
		{Thread: 0, Now: 45, Kind: core.TraceLock, Span: s0b, Peer: -1},
		{Thread: 0, Now: 55, Kind: core.TraceHelp, Phase: core.PhaseCombineUnderLock,
			Span: s0b, Peer: 1, PeerSpan: s1},
		{Thread: 0, Now: 60, Kind: core.TraceDone, Phase: core.PhaseCombineUnderLock, Span: s0b, Peer: -1},
		{Thread: 1, Now: 62, Kind: core.TraceHelped, Phase: core.PhaseCombineUnderLock,
			Span: s1, Peer: 0, PeerSpan: s0b},
	}
}

func TestBuildSpans(t *testing.T) {
	spans := BuildSpans(syntheticEvents())
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byID := map[uint64]Span{}
	for _, sp := range spans {
		if !sp.Complete {
			t.Errorf("span %x incomplete", sp.ID)
		}
		byID[sp.ID] = sp
	}

	self := byID[core.SpanID(0, 1)]
	if self.Helped || self.DonePhase != core.PhaseTryPrivate ||
		self.Attempts != 2 || self.Aborts != 1 {
		t.Errorf("self span wrong: %+v", self)
	}
	if self.Start != 0 || self.End != 20 {
		t.Errorf("self span bounds [%d,%d], want [0,20]", self.Start, self.End)
	}

	helped := byID[core.SpanID(1, 1)]
	if !helped.Helped || helped.Helper != 0 || helped.HelperSpan != core.SpanID(0, 2) {
		t.Errorf("helped span wrong: %+v", helped)
	}

	combiner := byID[core.SpanID(0, 2)]
	if len(combiner.Helps) != 1 || combiner.Helps[0].Peer != 1 ||
		combiner.Helps[0].PeerSpan != core.SpanID(1, 1) {
		t.Errorf("combiner help edges wrong: %+v", combiner.Helps)
	}
	// Dwell: start(30)→announce(35) TryPrivate, →select(40) TryVisible,
	// →lock(45) TryCombining, →done(60) CombineUnderLock.
	wantDwell := []Dwell{
		{Phase: core.PhaseTryPrivate, Start: 30, End: 35},
		{Phase: core.PhaseTryVisible, Start: 35, End: 40},
		{Phase: core.PhaseTryCombining, Start: 40, End: 45},
		{Phase: core.PhaseCombineUnderLock, Start: 45, End: 60},
	}
	if len(combiner.Dwell) != len(wantDwell) {
		t.Fatalf("combiner dwell = %+v, want %+v", combiner.Dwell, wantDwell)
	}
	for i, d := range combiner.Dwell {
		if d != wantDwell[i] {
			t.Errorf("dwell[%d] = %+v, want %+v", i, d, wantDwell[i])
		}
	}
}

func TestComputeSpanStats(t *testing.T) {
	st := ComputeSpanStats(BuildSpans(syntheticEvents()))
	if st.Spans != 3 || st.Self != 2 || st.Helped != 1 || st.HelpEdges != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.Attempts != 3 || st.Aborts != 2 {
		t.Errorf("attempts/aborts = %d/%d, want 3/2", st.Attempts, st.Aborts)
	}
	if st.HelpedLatency.Count != 1 || st.HelpedLatency.Min != 57 {
		t.Errorf("helped latency: %+v", st.HelpedLatency)
	}
	txt := FormatSpanStats(st)
	for _, want := range []string{"spans: 3", "combined-by edges: 1", "helped latency"} {
		if !strings.Contains(txt, want) {
			t.Errorf("FormatSpanStats missing %q:\n%s", want, txt)
		}
	}
}

func TestBuildSpansTruncated(t *testing.T) {
	evs := syntheticEvents()
	// Drop the first event: thread 0's first span loses its start,
	// thread 1's span survives intact.
	spans := BuildSpans(evs[1:])
	byID := map[uint64]Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	if sp := byID[core.SpanID(0, 1)]; sp.Complete {
		t.Errorf("span without start marked complete: %+v", sp)
	}
	if sp := byID[core.SpanID(1, 1)]; !sp.Complete {
		t.Errorf("intact span marked incomplete: %+v", sp)
	}
	st := ComputeSpanStats(spans)
	if st.Incomplete != 1 {
		t.Errorf("incomplete = %d, want 1", st.Incomplete)
	}
}

func TestWriteChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, syntheticEvents(), "HCF"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	count := map[string]int{}
	var flowIDs []string
	for _, ev := range doc.TraceEvents {
		key := ev["ph"].(string)
		if cat, ok := ev["cat"].(string); ok {
			key += ":" + cat
		}
		count[key]++
		if ev["ph"] == "s" || ev["ph"] == "f" {
			flowIDs = append(flowIDs, ev["id"].(string))
		}
	}
	if count["X:op"] != 3 {
		t.Errorf("op slices = %d, want 3", count["X:op"])
	}
	if count["X:phase"] < 4 {
		t.Errorf("phase sub-slices = %d, want >= 4", count["X:phase"])
	}
	if count["s:combine"] != 1 || count["f:combine"] != 1 {
		t.Errorf("flow events s=%d f=%d, want 1/1", count["s:combine"], count["f:combine"])
	}
	if len(flowIDs) == 2 && flowIDs[0] != flowIDs[1] {
		t.Errorf("flow source and target ids differ: %v", flowIDs)
	}
	if count["i:abort"] != 2 {
		t.Errorf("abort instants = %d, want 2", count["i:abort"])
	}
	// Conflict abort carries line + writer attribution.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["cat"] == "abort" {
			args := ev["args"].(map[string]any)
			if args["reason"] == "conflict" {
				found = true
				if args["line"] != float64(99) || args["writer"] != float64(1) {
					t.Errorf("conflict abort attribution wrong: %v", args)
				}
			}
		}
	}
	if !found {
		t.Error("no attributed conflict abort in chrome output")
	}
}

func TestHotLines(t *testing.T) {
	col := &Collector{}
	for i := 0; i < 5; i++ {
		col.Trace(core.TraceEvent{Thread: 0, Kind: core.TraceAttempt,
			Reason: htm.ReasonConflict, Line: 7, Peer: 2})
	}
	col.Trace(core.TraceEvent{Thread: 1, Kind: core.TraceAttempt,
		Reason: htm.ReasonConflict, Line: 7, Peer: 3})
	col.Trace(core.TraceEvent{Thread: 1, Kind: core.TraceAttempt,
		Reason: htm.ReasonConflict, Line: 9, Peer: -1})
	hot := col.HotLines(0)
	if len(hot) != 2 {
		t.Fatalf("got %d hot lines, want 2", len(hot))
	}
	if hot[0].Line != 7 || hot[0].Aborts != 6 || hot[0].TopWriter != 2 || hot[0].TopWriterAborts != 5 {
		t.Errorf("hot[0] = %+v", hot[0])
	}
	if hot[1].Line != 9 || hot[1].TopWriter != -1 {
		t.Errorf("hot[1] = %+v", hot[1])
	}
	if got := col.HotLines(1); len(got) != 1 || got[0].Line != 7 {
		t.Errorf("HotLines(1) = %+v", got)
	}
}

func TestFlightDumpKeepsNewest(t *testing.T) {
	col := &Collector{Limit: 4}
	for i := 0; i < 10; i++ {
		col.Trace(core.TraceEvent{Thread: 0, Now: int64(i), Kind: core.TraceStart,
			Span: core.SpanID(0, uint64(i+1)), Peer: -1})
	}
	dump := col.FlightDump(2)
	if strings.Count(dump, "\n") != 2 {
		t.Fatalf("dump has %d lines, want 2:\n%s", strings.Count(dump, "\n"), dump)
	}
	if !strings.Contains(dump, "@8") || !strings.Contains(dump, "@9") {
		t.Errorf("dump does not hold the newest events:\n%s", dump)
	}
	if col.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", col.Dropped())
	}
}

func TestSummaryDataJSON(t *testing.T) {
	col := &Collector{}
	for _, ev := range syntheticEvents() {
		col.Trace(ev)
	}
	data := col.SummaryData()
	if data.Starts != 3 {
		t.Errorf("starts = %d, want 3", data.Starts)
	}
	raw, err := json.Marshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"starts":3`, `"hot_lines"`, `"lock_acquisitions":1`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("JSON missing %s:\n%s", want, raw)
		}
	}
}
