// Package trace collects and summarizes HCF lifecycle events — the
// performance-debugging companion to the framework: where speculation
// fails and why, how large combiner selections get, how often operations
// get helped vs self-completed.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hcf/internal/core"
	"hcf/internal/htm"
)

// Collector records framework events. Safe for concurrent use; install it
// with Framework.SetTracer. Use Limit to bound memory on long runs.
type Collector struct {
	mu sync.Mutex
	// Limit bounds the number of retained events (0 = unlimited). Summary
	// counters keep aggregating past the limit.
	Limit int

	events  []core.TraceEvent
	dropped uint64

	attempts [core.NumPhases][htm.NumReasons]uint64
	dones    [core.NumPhases]uint64
	helped   [core.NumPhases]uint64
	selects  []int
	starts   uint64
	locks    uint64
}

var _ core.Tracer = (*Collector)(nil)

// Trace implements core.Tracer.
func (c *Collector) Trace(ev core.TraceEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Limit == 0 || len(c.events) < c.Limit {
		c.events = append(c.events, ev)
	} else {
		c.dropped++
	}
	switch ev.Kind {
	case core.TraceStart:
		c.starts++
	case core.TraceAttempt:
		c.attempts[ev.Phase][ev.Reason]++
	case core.TraceSelect:
		c.selects = append(c.selects, ev.N)
	case core.TraceLock:
		c.locks++
	case core.TraceDone:
		c.dones[ev.Phase]++
	case core.TraceHelped:
		c.helped[ev.Phase]++
	}
}

// Events returns the retained event stream.
func (c *Collector) Events() []core.TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]core.TraceEvent, len(c.events))
	copy(out, c.events)
	return out
}

// Dropped returns the number of events discarded because the retained
// stream had already reached Limit. Summary counters still cover them.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Starts returns the number of operations that entered Execute.
func (c *Collector) Starts() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.starts
}

// Summary renders an aggregate report.
func (c *Collector) Summary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "operations started: %d\n", c.starts)

	fmt.Fprintf(&b, "speculative attempts by phase and outcome:\n")
	for p := core.Phase(0); p < core.NumPhases; p++ {
		var total uint64
		for _, n := range c.attempts[p] {
			total += n
		}
		if total == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-16s total %-8d", p, total)
		fmt.Fprintf(&b, "commit %d", c.attempts[p][htm.ReasonNone])
		for r := htm.ReasonConflict; r < htm.NumReasons; r++ {
			if n := c.attempts[p][r]; n > 0 {
				fmt.Fprintf(&b, ", %s %d", r, n)
			}
		}
		b.WriteByte('\n')
	}

	fmt.Fprintf(&b, "completions by phase (self / helped):\n")
	for p := core.Phase(0); p < core.NumPhases; p++ {
		if c.dones[p] == 0 && c.helped[p] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-16s %d / %d\n", p, c.dones[p]-c.helped[p], c.helped[p])
	}

	if len(c.selects) > 0 {
		sorted := make([]int, len(c.selects))
		copy(sorted, c.selects)
		sort.Ints(sorted)
		var sum int
		for _, n := range sorted {
			sum += n
		}
		fmt.Fprintf(&b, "combiner selections: %d (sizes min %d, median %d, max %d, mean %.1f)\n",
			len(sorted), sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1],
			float64(sum)/float64(len(sorted)))
	}
	fmt.Fprintf(&b, "lock acquisitions by combiners: %d\n", c.locks)
	if c.dropped > 0 {
		fmt.Fprintf(&b, "events dropped at Limit=%d: %d (retained %d; counters above cover all events)\n",
			c.Limit, c.dropped, len(c.events))
	}
	return b.String()
}

// FormatTimeline renders the first n retained events as a per-line log.
func (c *Collector) FormatTimeline(n int) string {
	events := c.Events()
	if n > 0 && len(events) > n {
		events = events[:n]
	}
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "t%-3d @%-10d %-9s", ev.Thread, ev.Now, ev.Kind)
		switch ev.Kind {
		case core.TraceStart, core.TraceAnnounce:
			fmt.Fprintf(&b, " class=%d", ev.Class)
		case core.TraceAttempt:
			if ev.Reason == htm.ReasonNone {
				fmt.Fprintf(&b, " %s commit", ev.Phase)
			} else {
				fmt.Fprintf(&b, " %s abort(%s)", ev.Phase, ev.Reason)
			}
		case core.TraceSelect:
			fmt.Fprintf(&b, " n=%d", ev.N)
		case core.TraceDone, core.TraceHelped:
			fmt.Fprintf(&b, " in %s", ev.Phase)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
