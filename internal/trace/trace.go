// Package trace collects and summarizes HCF lifecycle events — the
// performance-debugging companion to the framework: where speculation
// fails and why, how large combiner selections get, how often operations
// get helped vs self-completed, which cache lines and threads cause
// conflict aborts, and (via span.go / chrome.go) per-operation causal
// spans exportable to Perfetto.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hcf/internal/core"
	"hcf/internal/htm"
)

// Collector records framework events into per-thread buffers. The hot path
// is lock-free: each emitting thread writes only its own shard (created
// once, on that thread's first event), so tracing never serializes the
// threads it observes. Install it with Framework.SetTracer (or any
// baseline engine's SetTracer).
//
// With Limit > 0 the collector is a bounded flight recorder: each thread
// retains a ring of its most recent Limit events and Dropped() counts the
// overwritten ones (summed across threads). Aggregate counters always
// cover every event, so a truncated timeline is never mistaken for a
// complete one. With Limit == 0 every event is retained.
//
// Trace and the counter accessors (Starts, Retained, Dropped) are safe for
// concurrent use on the real backend. Snapshot methods that walk the
// retained events (Events, Summary, FormatTimeline, HotLines, SummaryData)
// must run while no thread is emitting — in practice, after env.Run
// returns.
type Collector struct {
	// Limit bounds the number of retained events per emitting thread
	// (0 = retain everything). Aggregate counters keep covering all
	// events past the limit; the newest events win the ring.
	Limit int

	mu     sync.Mutex // guards shard-registry growth only
	shards atomic.Pointer[[]*shard]
}

// shard is one thread's event buffer and counters. Only its owning thread
// writes it; pos and dropped are atomic so counter accessors stay safe
// during a run.
type shard struct {
	ring    []core.TraceEvent
	pos     atomic.Uint64 // events ever written by this thread
	dropped atomic.Uint64 // events overwritten in the ring
	starts  atomic.Uint64

	locks    uint64
	attempts [core.NumPhases][htm.NumReasons]uint64
	dones    [core.NumPhases]uint64
	helped   [core.NumPhases]uint64
	helps    uint64
	selectN  []uint64 // selectN[n] = selections of exactly n operations
	// conflicts counts conflict aborts keyed by line<<32|uint32(writer+1),
	// feeding the hot-line report.
	conflicts map[uint64]uint64
	// curClass is the class of the thread's current operation, set by
	// TraceStart; subsequent attempts are attributed to it (a combiner's
	// batch attempts count against the combiner's own class).
	curClass int
	// classAttempts[class][phase][reason] is the per-class attempt
	// taxonomy, grown on demand.
	classAttempts [][core.NumPhases][htm.NumReasons]uint64
	// classSelects[class] = {selections, summed selection size} made by
	// combiners running an operation of that class.
	classSelects [][2]uint64
	// classConflicts counts conflict aborts keyed by
	// class<<48|line<<16|uint16(writer+1), feeding ClassHotLines.
	classConflicts map[uint64]uint64
	_              [64]byte
}

var _ core.Tracer = (*Collector)(nil)

// shardFor returns thread t's shard, creating it on first use. The fast
// path is one atomic load and two bounds checks.
func (c *Collector) shardFor(t int) *shard {
	if t < 0 {
		t = 0
	}
	if p := c.shards.Load(); p != nil && t < len(*p) && (*p)[t] != nil {
		return (*p)[t]
	}
	return c.growShard(t)
}

func (c *Collector) growShard(t int) *shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	var cur []*shard
	if p := c.shards.Load(); p != nil {
		cur = *p
	}
	if t < len(cur) && cur[t] != nil {
		return cur[t]
	}
	n := len(cur)
	if t+1 > n {
		n = t + 1
	}
	grown := make([]*shard, n)
	copy(grown, cur)
	grown[t] = &shard{
		conflicts:      make(map[uint64]uint64),
		classConflicts: make(map[uint64]uint64),
	}
	c.shards.Store(&grown)
	return grown[t]
}

// snapshot returns the current shard registry.
func (c *Collector) snapshot() []*shard {
	if p := c.shards.Load(); p != nil {
		return *p
	}
	return nil
}

// conflictKey packs a (line, writer) pair for the conflicts map.
func conflictKey(line uint32, writer int) uint64 {
	return uint64(line)<<32 | uint64(uint32(writer+1))
}

// classConflictKey packs a (class, line, writer) triple for the
// classConflicts map. Writers are thread ids and fit 16 bits.
func classConflictKey(class int, line uint32, writer int) uint64 {
	return uint64(class)<<48 | uint64(line)<<16 | uint64(uint16(writer+1))
}

// Trace implements core.Tracer. It is called inline on the execution path
// and writes only the emitting thread's shard.
func (c *Collector) Trace(ev core.TraceEvent) {
	s := c.shardFor(ev.Thread)
	pos := s.pos.Load()
	if c.Limit > 0 && len(s.ring) >= c.Limit {
		s.ring[pos%uint64(c.Limit)] = ev
		s.dropped.Add(1)
	} else {
		s.ring = append(s.ring, ev)
	}
	s.pos.Store(pos + 1)
	switch ev.Kind {
	case core.TraceStart:
		s.starts.Add(1)
		s.curClass = ev.Class
	case core.TraceAttempt:
		s.attempts[ev.Phase][ev.Reason]++
		for len(s.classAttempts) <= s.curClass {
			s.classAttempts = append(s.classAttempts, [core.NumPhases][htm.NumReasons]uint64{})
		}
		s.classAttempts[s.curClass][ev.Phase][ev.Reason]++
		if ev.Reason == htm.ReasonConflict {
			s.conflicts[conflictKey(ev.Line, ev.Peer)]++
			s.classConflicts[classConflictKey(s.curClass, ev.Line, ev.Peer)]++
		}
	case core.TraceSelect:
		for len(s.selectN) <= ev.N {
			s.selectN = append(s.selectN, 0)
		}
		s.selectN[ev.N]++
		for len(s.classSelects) <= s.curClass {
			s.classSelects = append(s.classSelects, [2]uint64{})
		}
		s.classSelects[s.curClass][0]++
		s.classSelects[s.curClass][1] += uint64(ev.N)
	case core.TraceLock:
		s.locks++
	case core.TraceDone:
		s.dones[ev.Phase]++
	case core.TraceHelped:
		s.helped[ev.Phase]++
	case core.TraceHelp:
		s.helps++
	}
}

// chronological returns one shard's retained events oldest-first.
func (s *shard) chronological(limit int) []core.TraceEvent {
	pos := s.pos.Load()
	if limit == 0 || len(s.ring) < limit || pos <= uint64(len(s.ring)) {
		out := make([]core.TraceEvent, len(s.ring))
		copy(out, s.ring)
		return out
	}
	head := int(pos % uint64(limit)) // oldest retained event
	out := make([]core.TraceEvent, 0, len(s.ring))
	out = append(out, s.ring[head:]...)
	out = append(out, s.ring[:head]...)
	return out
}

// Events returns the retained event stream of all threads merged into one
// timeline, ordered by (Now, Thread); within a thread, emission order is
// preserved. On the deterministic backend the merged stream is bit-exact
// reproducible for a given seed.
func (c *Collector) Events() []core.TraceEvent {
	var out []core.TraceEvent
	for _, s := range c.snapshot() {
		if s == nil {
			continue
		}
		out = append(out, s.chronological(c.Limit)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Now != out[j].Now {
			return out[i].Now < out[j].Now
		}
		return out[i].Thread < out[j].Thread
	})
	return out
}

// Dropped returns the number of events overwritten in the per-thread
// flight-recorder rings (summed across threads). Summary counters still
// cover them.
func (c *Collector) Dropped() uint64 {
	var n uint64
	for _, s := range c.snapshot() {
		if s != nil {
			n += s.dropped.Load()
		}
	}
	return n
}

// Retained returns the number of currently retained events. It is derived
// from the atomic per-thread write positions (a full ring retains exactly
// Limit events), so it is safe to call from any goroutine mid-run.
func (c *Collector) Retained() int {
	n := 0
	for _, s := range c.snapshot() {
		if s == nil {
			continue
		}
		p := s.pos.Load()
		if c.Limit > 0 && p > uint64(c.Limit) {
			p = uint64(c.Limit)
		}
		n += int(p)
	}
	return n
}

// Starts returns the number of operations that entered Execute.
func (c *Collector) Starts() uint64 {
	var n uint64
	for _, s := range c.snapshot() {
		if s != nil {
			n += s.starts.Load()
		}
	}
	return n
}

// HotLine is one entry of the conflict-attribution report: a cache line,
// how many conflict aborts it caused, and the thread whose writes caused
// most of them.
type HotLine struct {
	// Line is the conflicting cache line.
	Line uint32 `json:"line"`
	// Aborts is the number of conflict aborts attributed to the line.
	Aborts uint64 `json:"aborts"`
	// TopWriter is the thread whose writes caused the most aborts on this
	// line (-1 if the writer was unknown).
	TopWriter int `json:"top_writer"`
	// TopWriterAborts is the abort count attributed to TopWriter.
	TopWriterAborts uint64 `json:"top_writer_aborts"`
}

// HotLines aggregates conflict aborts by cache line and returns the top n
// lines by abort count (all of them when n <= 0), each attributed to its
// dominant writer thread.
func (c *Collector) HotLines(n int) []HotLine {
	byLine := make(map[uint32]map[int]uint64)
	for _, s := range c.snapshot() {
		if s == nil {
			continue
		}
		for key, count := range s.conflicts {
			line := uint32(key >> 32)
			writer := int(uint32(key)) - 1
			wc := byLine[line]
			if wc == nil {
				wc = make(map[int]uint64)
				byLine[line] = wc
			}
			wc[writer] += count
		}
	}
	return topHotLines(byLine, n)
}

// topHotLines folds a line→writer→count aggregation into the sorted
// hot-line report (top n by abort count; all when n <= 0).
func topHotLines(byLine map[uint32]map[int]uint64, n int) []HotLine {
	out := make([]HotLine, 0, len(byLine))
	for line, wc := range byLine {
		hl := HotLine{Line: line, TopWriter: -1}
		for writer, count := range wc {
			hl.Aborts += count
			if count > hl.TopWriterAborts ||
				(count == hl.TopWriterAborts && writer > hl.TopWriter) {
				hl.TopWriter = writer
				hl.TopWriterAborts = count
			}
		}
		out = append(out, hl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Aborts != out[j].Aborts {
			return out[i].Aborts > out[j].Aborts
		}
		return out[i].Line < out[j].Line
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ClassAttempts aggregates the per-class speculative-attempt taxonomy:
// out[class][phase][reason] counts finished attempts of operations of that
// class (a combiner's batch attempts count against the combiner's class).
// Like the other aggregate counters it covers every event regardless of
// Limit. Reading during a run is safe only where shard writers cannot be
// mid-update — in practice on the deterministic backend (cooperative
// scheduling) or after env.Run returns.
func (c *Collector) ClassAttempts() [][core.NumPhases][htm.NumReasons]uint64 {
	var out [][core.NumPhases][htm.NumReasons]uint64
	for _, s := range c.snapshot() {
		if s == nil {
			continue
		}
		for cl := range s.classAttempts {
			for len(out) <= cl {
				out = append(out, [core.NumPhases][htm.NumReasons]uint64{})
			}
			for p := 0; p < core.NumPhases; p++ {
				for r := 0; r < htm.NumReasons; r++ {
					out[cl][p][r] += s.classAttempts[cl][p][r]
				}
			}
		}
	}
	return out
}

// ClassSelections aggregates combiner selections by the combiner's
// operation class: out[class] = {selections, summed selection size}, so
// out[class][1]/out[class][0] is the class's mean combining degree. Same
// in-run safety caveat as ClassAttempts.
func (c *Collector) ClassSelections() [][2]uint64 {
	var out [][2]uint64
	for _, s := range c.snapshot() {
		if s == nil {
			continue
		}
		for cl := range s.classSelects {
			for len(out) <= cl {
				out = append(out, [2]uint64{})
			}
			out[cl][0] += s.classSelects[cl][0]
			out[cl][1] += s.classSelects[cl][1]
		}
	}
	return out
}

// ClassHotLines is HotLines restricted to conflict aborts suffered by
// operations of one class: which cache lines abort this class's
// speculation, and which thread's writes dominate each.
func (c *Collector) ClassHotLines(class, n int) []HotLine {
	byLine := make(map[uint32]map[int]uint64)
	for _, s := range c.snapshot() {
		if s == nil {
			continue
		}
		for key, count := range s.classConflicts {
			if int(key>>48) != class {
				continue
			}
			line := uint32(key >> 16)
			writer := int(uint16(key)) - 1
			wc := byLine[line]
			if wc == nil {
				wc = make(map[int]uint64)
				byLine[line] = wc
			}
			wc[writer] += count
		}
	}
	return topHotLines(byLine, n)
}

// selectionStats summarizes combiner selection sizes from the per-shard
// histograms.
type selectionStats struct {
	count            uint64
	min, median, max int
	mean             float64
}

func (c *Collector) selections() selectionStats {
	var hist []uint64
	for _, s := range c.snapshot() {
		if s == nil {
			continue
		}
		for n, cnt := range s.selectN {
			for len(hist) <= n {
				hist = append(hist, 0)
			}
			hist[n] += cnt
		}
	}
	st := selectionStats{min: -1}
	var sum uint64
	for n, cnt := range hist {
		if cnt == 0 {
			continue
		}
		if st.min < 0 {
			st.min = n
		}
		st.max = n
		st.count += cnt
		sum += uint64(n) * cnt
	}
	if st.count == 0 {
		return selectionStats{}
	}
	st.mean = float64(sum) / float64(st.count)
	target := st.count / 2
	var cum uint64
	for n, cnt := range hist {
		cum += cnt
		if cum > target {
			st.median = n
			break
		}
	}
	if st.min < 0 {
		st.min = 0
	}
	return st
}

// SelectionStats summarizes combiner selection sizes observed so far (zero
// value when no combiner has run). Same in-run caveats as ClassAttempts.
func (c *Collector) SelectionStats() Selections {
	st := c.selections()
	return Selections{Count: st.count, Min: st.min, Median: st.median, Max: st.max, Mean: st.mean}
}

// Summary renders an aggregate report.
func (c *Collector) Summary() string {
	shards := c.snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "operations started: %d\n", c.Starts())

	fmt.Fprintf(&b, "speculative attempts by phase and outcome:\n")
	for p := core.Phase(0); p < core.NumPhases; p++ {
		var byReason [htm.NumReasons]uint64
		var total uint64
		for _, s := range shards {
			if s == nil {
				continue
			}
			for r, n := range s.attempts[p] {
				byReason[r] += n
				total += n
			}
		}
		if total == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-16s total %-8d", p, total)
		fmt.Fprintf(&b, "commit %d", byReason[htm.ReasonNone])
		for r := htm.ReasonConflict; r < htm.NumReasons; r++ {
			if n := byReason[r]; n > 0 {
				fmt.Fprintf(&b, ", %s %d", r, n)
			}
		}
		b.WriteByte('\n')
	}

	fmt.Fprintf(&b, "completions by phase (self / helped):\n")
	for p := core.Phase(0); p < core.NumPhases; p++ {
		var dones, helped uint64
		for _, s := range shards {
			if s == nil {
				continue
			}
			dones += s.dones[p]
			helped += s.helped[p]
		}
		if dones == 0 && helped == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-16s %d / %d\n", p, dones-helped, helped)
	}

	if sel := c.selections(); sel.count > 0 {
		fmt.Fprintf(&b, "combiner selections: %d (sizes min %d, median %d, max %d, mean %.1f)\n",
			sel.count, sel.min, sel.median, sel.max, sel.mean)
	}
	var locks uint64
	for _, s := range shards {
		if s != nil {
			locks += s.locks
		}
	}
	fmt.Fprintf(&b, "lock acquisitions by combiners: %d\n", locks)
	if hot := c.HotLines(5); len(hot) > 0 {
		fmt.Fprintf(&b, "hottest conflicting cache lines (line: aborts, dominant writer):\n")
		for _, hl := range hot {
			writer := "unknown"
			if hl.TopWriter >= 0 {
				writer = fmt.Sprintf("t%d (%d)", hl.TopWriter, hl.TopWriterAborts)
			}
			fmt.Fprintf(&b, "  line %-8d %-8d %s\n", hl.Line, hl.Aborts, writer)
		}
	}
	if dropped := c.Dropped(); dropped > 0 {
		fmt.Fprintf(&b, "events dropped at Limit=%d: %d (retained %d per-thread newest; counters above cover all events)\n",
			c.Limit, dropped, c.Retained())
	}
	return b.String()
}

// FormatTimeline renders the first n merged events as a per-line log.
func (c *Collector) FormatTimeline(n int) string {
	return FormatEvents(c.Events(), n)
}

// FlightDump renders the LAST n merged events — the flight-recorder view,
// used when a violation is detected and the most recent history matters.
func (c *Collector) FlightDump(n int) string {
	events := c.Events()
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	return FormatEvents(events, 0)
}

// FormatEvents renders up to n events (0 = all) as a per-line log.
func FormatEvents(events []core.TraceEvent, n int) string {
	if n > 0 && len(events) > n {
		events = events[:n]
	}
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "t%-3d @%-10d %-9s", ev.Thread, ev.Now, ev.Kind)
		switch ev.Kind {
		case core.TraceStart, core.TraceAnnounce:
			fmt.Fprintf(&b, " class=%d span=%x", ev.Class, ev.Span)
		case core.TraceAttempt:
			if ev.Reason == htm.ReasonNone {
				fmt.Fprintf(&b, " %s commit", ev.Phase)
			} else {
				fmt.Fprintf(&b, " %s abort(%s)", ev.Phase, ev.Reason)
				switch ev.Reason {
				case htm.ReasonConflict:
					if ev.Peer >= 0 {
						fmt.Fprintf(&b, " line=%d writer=t%d", ev.Line, ev.Peer)
					} else {
						fmt.Fprintf(&b, " line=%d", ev.Line)
					}
				case htm.ReasonLockHeld:
					if ev.Peer >= 0 {
						fmt.Fprintf(&b, " holder=t%d", ev.Peer)
					}
				}
			}
		case core.TraceSelect:
			fmt.Fprintf(&b, " n=%d", ev.N)
		case core.TraceDone:
			fmt.Fprintf(&b, " in %s", ev.Phase)
		case core.TraceHelped:
			fmt.Fprintf(&b, " in %s", ev.Phase)
			if ev.Peer >= 0 {
				fmt.Fprintf(&b, " by=t%d", ev.Peer)
			}
		case core.TraceHelp:
			fmt.Fprintf(&b, " in %s helped=t%d span=%x", ev.Phase, ev.Peer, ev.PeerSpan)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PhaseAttempts is the per-phase attempt breakdown of SummaryData.
type PhaseAttempts struct {
	Phase   string            `json:"phase"`
	Total   uint64            `json:"total"`
	Commits uint64            `json:"commits"`
	Aborts  map[string]uint64 `json:"aborts,omitempty"`
}

// PhaseCompletions is the per-phase completion breakdown of SummaryData.
type PhaseCompletions struct {
	Phase  string `json:"phase"`
	Self   uint64 `json:"self"`
	Helped uint64 `json:"helped"`
}

// Selections summarizes combiner selection sizes in SummaryData.
type Selections struct {
	Count  uint64  `json:"count"`
	Min    int     `json:"min"`
	Median int     `json:"median"`
	Max    int     `json:"max"`
	Mean   float64 `json:"mean"`
}

// SummaryData is the machine-readable form of Summary.
type SummaryData struct {
	Starts      uint64             `json:"starts"`
	Attempts    []PhaseAttempts    `json:"attempts,omitempty"`
	Completions []PhaseCompletions `json:"completions,omitempty"`
	Selections  *Selections        `json:"selections,omitempty"`
	Locks       uint64             `json:"lock_acquisitions"`
	HotLines    []HotLine          `json:"hot_lines,omitempty"`
	Retained    int                `json:"events_retained"`
	Dropped     uint64             `json:"events_dropped"`
}

// SummaryData assembles the aggregate counters into a JSON-friendly
// structure (the machine-readable twin of Summary).
func (c *Collector) SummaryData() SummaryData {
	shards := c.snapshot()
	data := SummaryData{
		Starts:   c.Starts(),
		Locks:    0,
		HotLines: c.HotLines(10),
		Retained: c.Retained(),
		Dropped:  c.Dropped(),
	}
	for p := core.Phase(0); p < core.NumPhases; p++ {
		var byReason [htm.NumReasons]uint64
		var total uint64
		for _, s := range shards {
			if s == nil {
				continue
			}
			for r, n := range s.attempts[p] {
				byReason[r] += n
				total += n
			}
		}
		if total > 0 {
			pa := PhaseAttempts{Phase: p.String(), Total: total, Commits: byReason[htm.ReasonNone]}
			for r := htm.ReasonConflict; r < htm.NumReasons; r++ {
				if n := byReason[r]; n > 0 {
					if pa.Aborts == nil {
						pa.Aborts = make(map[string]uint64)
					}
					pa.Aborts[r.String()] = n
				}
			}
			data.Attempts = append(data.Attempts, pa)
		}
		var dones, helped uint64
		for _, s := range shards {
			if s == nil {
				continue
			}
			dones += s.dones[p]
			helped += s.helped[p]
		}
		if dones > 0 || helped > 0 {
			data.Completions = append(data.Completions, PhaseCompletions{
				Phase: p.String(), Self: dones - helped, Helped: helped,
			})
		}
	}
	for _, s := range shards {
		if s != nil {
			data.Locks += s.locks
		}
	}
	if sel := c.selections(); sel.count > 0 {
		data.Selections = &Selections{
			Count: sel.count, Min: sel.min, Median: sel.median, Max: sel.max, Mean: sel.mean,
		}
	}
	return data
}
