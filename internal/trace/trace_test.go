package trace

import (
	"strings"
	"testing"

	"hcf/internal/core"
	"hcf/internal/htm"
	"hcf/internal/memsim"
)

type incOp struct{ addr memsim.Addr }

func (o incOp) Apply(ctx memsim.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o incOp) Class() int { return 0 }

func tracedRun(t *testing.T, threads, perThread int, limit int) (*Collector, uint64) {
	t.Helper()
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	fw, err := core.New(env, core.Config{Policies: []core.Policy{{
		TryPrivateTrials:   2,
		TryVisibleTrials:   2,
		TryCombiningTrials: 4,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	col := &Collector{Limit: limit}
	fw.SetTracer(col)
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < perThread; i++ {
			fw.Execute(th, incOp{addr: counter})
		}
	})
	return col, env.Boot().Load(counter)
}

func TestCollectorCountsStartsAndDones(t *testing.T) {
	const threads, perThread = 8, 25
	col, final := tracedRun(t, threads, perThread, 0)
	if final != threads*perThread {
		t.Fatalf("counter = %d", final)
	}
	if col.Starts() != threads*perThread {
		t.Fatalf("starts = %d, want %d", col.Starts(), threads*perThread)
	}
	var dones uint64
	for _, ev := range col.Events() {
		if ev.Kind == core.TraceDone {
			dones++
		}
	}
	if dones != threads*perThread {
		t.Fatalf("done events = %d, want %d", dones, threads*perThread)
	}
}

func TestEventStreamStructure(t *testing.T) {
	col, _ := tracedRun(t, 4, 20, 0)
	// Per thread: every op's first event is start, last is done; attempts
	// and announces sit in between.
	perThread := map[int][]core.TraceEvent{}
	for _, ev := range col.Events() {
		perThread[ev.Thread] = append(perThread[ev.Thread], ev)
	}
	for tid, evs := range perThread {
		depth := 0
		for i, ev := range evs {
			switch ev.Kind {
			case core.TraceStart:
				if depth != 0 {
					t.Fatalf("thread %d event %d: nested start", tid, i)
				}
				depth = 1
			case core.TraceDone:
				if depth != 1 {
					t.Fatalf("thread %d event %d: done without start", tid, i)
				}
				depth = 0
			case core.TraceAttempt, core.TraceAnnounce, core.TraceSelect,
				core.TraceLock, core.TraceHelped:
				if depth != 1 {
					t.Fatalf("thread %d event %d: %s outside an operation", tid, i, ev.Kind)
				}
			}
		}
		if depth != 0 {
			t.Fatalf("thread %d ended mid-operation", tid)
		}
	}
}

func TestLimitBoundsRetentionNotCounters(t *testing.T) {
	// Limit is a per-thread flight-recorder ring: 6 threads x 10 newest.
	col, _ := tracedRun(t, 6, 30, 10)
	if len(col.Events()) != 60 {
		t.Fatalf("retained %d events, want 60 (10 per thread)", len(col.Events()))
	}
	if col.Retained() != 60 {
		t.Fatalf("Retained() = %d, want 60", col.Retained())
	}
	if col.Starts() != 180 {
		t.Fatalf("starts = %d, want 180 (aggregation must continue)", col.Starts())
	}
	// The ring keeps the newest events: each thread's final event must be
	// its last op's done.
	last := map[int]core.TraceEvent{}
	for _, ev := range col.Events() {
		last[ev.Thread] = ev
	}
	for tid, ev := range last {
		if ev.Kind != core.TraceDone {
			t.Fatalf("thread %d last retained event is %s, want done", tid, ev.Kind)
		}
	}
}

// TestDroppedEventsReported is the regression test for the silent-drop bug:
// a Collector with a Limit used to discard events past the limit without any
// trace of having done so, so a truncated timeline was indistinguishable
// from a complete one. Dropped() and Summary() must now report the count.
func TestDroppedEventsReported(t *testing.T) {
	col, _ := tracedRun(t, 6, 30, 10)
	if got := len(col.Events()); got != 60 {
		t.Fatalf("retained %d events, want 60 (10 per thread)", got)
	}
	dropped := col.Dropped()
	if dropped == 0 {
		t.Fatal("Dropped() = 0 after exceeding Limit; drops must be counted")
	}
	// Every op emits at least start+done, so 180 ops emit >= 360 events;
	// 60 were retained, the rest dropped.
	if dropped < 300 {
		t.Fatalf("Dropped() = %d, want >= 300", dropped)
	}
	sum := col.Summary()
	if !strings.Contains(sum, "events dropped at Limit=10:") {
		t.Fatalf("Summary does not report dropped events:\n%s", sum)
	}

	// No limit => no drops, and no dropped line in the summary.
	unlimited, _ := tracedRun(t, 2, 5, 0)
	if got := unlimited.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d without a Limit, want 0", got)
	}
	if strings.Contains(unlimited.Summary(), "events dropped") {
		t.Fatal("Summary mentions drops when none occurred")
	}
}

func TestSummaryAndTimelineRender(t *testing.T) {
	col, _ := tracedRun(t, 8, 25, 0)
	sum := col.Summary()
	for _, want := range []string{"operations started: 200", "TryPrivate", "completions by phase"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
	tl := col.FormatTimeline(5)
	if lines := strings.Count(tl, "\n"); lines != 5 {
		t.Fatalf("timeline has %d lines, want 5:\n%s", lines, tl)
	}
	if !strings.HasPrefix(tl, "t") {
		t.Fatalf("timeline format: %q", tl)
	}
}

func TestTraceKindStrings(t *testing.T) {
	want := map[core.TraceKind]string{
		core.TraceStart:    "start",
		core.TraceAttempt:  "attempt",
		core.TraceAnnounce: "announce",
		core.TraceSelect:   "select",
		core.TraceLock:     "lock",
		core.TraceDone:     "done",
		core.TraceHelped:   "helped",
		core.TraceKind(0):  "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("kind %d = %q, want %q", k, k.String(), s)
		}
	}
}

func TestAttemptOutcomesRecorded(t *testing.T) {
	col, _ := tracedRun(t, 12, 30, 0)
	commits := uint64(0)
	aborts := uint64(0)
	for _, ev := range col.Events() {
		if ev.Kind == core.TraceAttempt {
			if ev.Reason == htm.ReasonNone {
				commits++
			} else {
				aborts++
			}
		}
	}
	if commits == 0 {
		t.Fatal("no committed attempts recorded")
	}
	if aborts == 0 {
		t.Fatal("no aborted attempts recorded under contention")
	}
}

// TestClassAttribution pins the per-class aggregation the policy autotuner
// consumes: attempts (with conflict attribution) and combiner selections
// are charged to the class of the thread's current operation.
func TestClassAttribution(t *testing.T) {
	col := &Collector{}
	// A class-1 operation: one conflict abort on line 5 (writer 2), one
	// commit, and a combiner selection of 3 operations.
	col.Trace(core.TraceEvent{Thread: 0, Kind: core.TraceStart, Class: 1, Peer: -1})
	col.Trace(core.TraceEvent{Thread: 0, Kind: core.TraceAttempt,
		Phase: core.PhaseTryPrivate, Reason: htm.ReasonConflict, Line: 5, Peer: 2})
	col.Trace(core.TraceEvent{Thread: 0, Kind: core.TraceAttempt,
		Phase: core.PhaseTryPrivate, Reason: htm.ReasonNone, Peer: -1})
	col.Trace(core.TraceEvent{Thread: 0, Kind: core.TraceSelect, N: 3, Peer: -1})
	// A class-0 operation on another thread: a selection of 1.
	col.Trace(core.TraceEvent{Thread: 1, Kind: core.TraceStart, Class: 0, Peer: -1})
	col.Trace(core.TraceEvent{Thread: 1, Kind: core.TraceSelect, N: 1, Peer: -1})

	ca := col.ClassAttempts()
	if len(ca) != 2 {
		t.Fatalf("ClassAttempts covers %d classes, want 2", len(ca))
	}
	if got := ca[1][core.PhaseTryPrivate][htm.ReasonConflict]; got != 1 {
		t.Errorf("class 1 private conflicts = %d, want 1", got)
	}
	if got := ca[1][core.PhaseTryPrivate][htm.ReasonNone]; got != 1 {
		t.Errorf("class 1 private commits = %d, want 1", got)
	}
	if got := ca[0][core.PhaseTryPrivate][htm.ReasonConflict]; got != 0 {
		t.Errorf("class 0 inherited class 1's conflict: %d", got)
	}

	cs := col.ClassSelections()
	if len(cs) != 2 {
		t.Fatalf("ClassSelections covers %d classes, want 2", len(cs))
	}
	if cs[1] != [2]uint64{1, 3} {
		t.Errorf("class 1 selections = %v, want {1,3}", cs[1])
	}
	if cs[0] != [2]uint64{1, 1} {
		t.Errorf("class 0 selections = %v, want {1,1}", cs[0])
	}

	hot := col.ClassHotLines(1, 4)
	if len(hot) != 1 || hot[0].Line != 5 || hot[0].Aborts != 1 || hot[0].TopWriter != 2 {
		t.Errorf("ClassHotLines(1) = %+v", hot)
	}
	if got := col.ClassHotLines(0, 4); len(got) != 0 {
		t.Errorf("ClassHotLines(0) = %+v, want empty", got)
	}
}
