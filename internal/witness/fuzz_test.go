package witness

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"hcf/internal/memsim"
	"hcf/internal/seq/hashtable"
)

// TestScheduleFuzzHashTable explores many distinct interleavings by
// perturbing the cost model with seeded jitter, and requires a valid
// linearization witness from every engine under every schedule. Each
// failing seed is exactly reproducible.
func TestScheduleFuzzHashTable(t *testing.T) {
	const threads, perThread = 6, 40
	for seed := uint64(0); seed < 6; seed++ {
		for _, name := range []string{"TLE", "FC", "TLE+FC", "HCF"} {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, name), func(t *testing.T) {
				cost := memsim.DefaultCostParams()
				cost.JitterPct = 40
				env := memsim.NewDet(memsim.DetConfig{Threads: threads, Cost: cost, Seed: seed})
				tbl := hashtable.New(env.Boot(), 32)
				rec := &Recorder{}
				eng := witnessedEngines(t, env, hashtable.Policies(), hashtable.CombineMixed, rec)[name]
				env.Run(func(th *memsim.Thread) {
					rng := rand.New(rand.NewPCG(uint64(th.ID()), seed))
					for i := 0; i < perThread; i++ {
						key := rng.Uint64N(48)
						switch rng.IntN(3) {
						case 0:
							eng.Execute(th, hashtable.InsertOp{T: tbl, Key: key, Val: key + seed})
						case 1:
							eng.Execute(th, hashtable.FindOp{T: tbl, Key: key})
						default:
							eng.Execute(th, hashtable.RemoveOp{T: tbl, Key: key})
						}
					}
				})
				if err := Check(rec, &mapModel{m: map[uint64]uint64{}}, threads*perThread, insertsLast); err != nil {
					t.Fatal(err)
				}
				if msg := tbl.CheckInvariants(env.Boot()); msg != "" {
					t.Fatal(msg)
				}
			})
		}
	}
}

// TestScheduleFuzzCounter does the same with the counter workload across
// all six engines (cheaper, so more seeds).
func TestScheduleFuzzCounter(t *testing.T) {
	const threads, perThread = 5, 30
	pols := counterPolicies()
	for seed := uint64(0); seed < 10; seed++ {
		for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, name), func(t *testing.T) {
				cost := memsim.DefaultCostParams()
				cost.JitterPct = 50
				env := memsim.NewDet(memsim.DetConfig{Threads: threads, Cost: cost, Seed: seed})
				rec := &Recorder{}
				eng := witnessedEngines(t, env, pols, combineIncs, rec)[name]
				counter := env.Alloc(1)
				env.Run(func(th *memsim.Thread) {
					for i := 0; i < perThread; i++ {
						eng.Execute(th, incOp{addr: counter})
					}
				})
				if err := Check(rec, &counterModel{}, threads*perThread, nil); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
