// Package witness implements serialization-witness linearizability
// checking for the synchronization engines.
//
// Every engine in this repository can report, for each applied operation,
// a serialization stamp: transactional applications use the TL2 commit
// stamp, lock-protected applications tick the same global version clock.
// Sorting all applications by (stamp, intra-batch index) yields a legal
// linearization of the concurrent history. Replaying the operations in
// that order against a trivial sequential model must reproduce every
// result returned to every thread — a strong end-to-end check that the
// engine applied each operation exactly once, atomically, and in an order
// consistent with real-time.
//
// The intra-batch index assumes order-preserving combiners (every
// CombineFunc in this repository except the AVL key-sorting one), which
// assign results consistent with applying the batch in the given order.
package witness

import (
	"fmt"
	"sort"
	"sync"

	"hcf/internal/engine"
)

// Entry is one witnessed operation application.
type Entry struct {
	Stamp  uint64
	Intra  int
	Op     engine.Op
	Result uint64
	seq    int // arrival tie-break for deterministic sorting
}

// Recorder collects witnessed applications. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	entries []Entry
}

// Func returns the WitnessFunc to install on an engine.
func (r *Recorder) Func() engine.WitnessFunc {
	return func(stamp uint64, intra int, op engine.Op, result uint64) {
		r.mu.Lock()
		r.entries = append(r.entries, Entry{
			Stamp:  stamp,
			Intra:  intra,
			Op:     op,
			Result: result,
			seq:    len(r.entries),
		})
		r.mu.Unlock()
	}
}

// Len returns the number of recorded applications.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Entries returns a copy of the recorded applications in arrival order.
// Determinism tests compare these across replays: a deterministic schedule
// must reproduce the recording exactly, entry for entry.
func (r *Recorder) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// Serialization returns the recorded applications sorted into linearization
// order. rank, when non-nil, orders operations *within* an atomic batch
// (same stamp) ahead of the intra index: combine functions that apply one
// operation kind after the others (e.g. CombineMixed applies the combined
// kind last) need the replay to follow the same in-batch order.
func (r *Recorder) Serialization(rank func(op engine.Op) int) []Entry {
	r.mu.Lock()
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	r.mu.Unlock()
	rk := func(e Entry) int {
		if rank == nil {
			return 0
		}
		return rank(e.Op)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stamp != out[j].Stamp {
			return out[i].Stamp < out[j].Stamp
		}
		if ri, rj := rk(out[i]), rk(out[j]); ri != rj {
			return ri < rj
		}
		if out[i].Intra != out[j].Intra {
			return out[i].Intra < out[j].Intra
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Model is a sequential reference implementation of the data structure
// under test.
type Model interface {
	// Apply runs op against the model and returns the result a sequential
	// execution would produce.
	Apply(op engine.Op) uint64
}

// FlightSource is anything that can dump its most recent lifecycle
// events — typically *trace.Collector, whose per-thread rings make it an
// always-on bounded flight recorder. Declared here as an interface so the
// checker stays independent of the trace package.
type FlightSource interface {
	// FlightDump renders the last n recorded events (0 = all retained).
	FlightDump(n int) string
}

// CheckDump is Check with a flight recorder attached: when the check
// fails, the error carries the last n traced events so the history
// leading up to the violation is visible without a re-run.
func CheckDump(r *Recorder, model Model, expectOps int, rank func(op engine.Op) int, fr FlightSource, n int) error {
	err := Check(r, model, expectOps, rank)
	if err == nil || fr == nil {
		return err
	}
	dump := fr.FlightDump(n)
	if dump == "" {
		return err
	}
	return fmt.Errorf("%w\nflight recorder (most recent events):\n%s", err, dump)
}

// Check replays the recorder's serialization against model and returns an
// error describing the first divergence, if any. expectOps, when >= 0,
// additionally requires exactly that many recorded applications (exactly
// once for every invoked operation). rank orders operations within atomic
// batches; see Serialization.
func Check(r *Recorder, model Model, expectOps int, rank func(op engine.Op) int) error {
	entries := r.Serialization(rank)
	if expectOps >= 0 && len(entries) != expectOps {
		return fmt.Errorf("witnessed %d applications, expected %d", len(entries), expectOps)
	}
	for i, e := range entries {
		want := model.Apply(e.Op)
		if want != e.Result {
			return fmt.Errorf(
				"linearization diverges at position %d (stamp %d, intra %d): engine returned %d, sequential replay gives %d for %T",
				i, e.Stamp, e.Intra, e.Result, want, e.Op)
		}
	}
	return nil
}
