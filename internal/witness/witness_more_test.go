package witness

import (
	"math/rand/v2"
	"testing"

	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/seq/btree"
	"hcf/internal/seq/queue"
	"hcf/internal/seq/skipset"
)

// fifoModel replays queue operations.
type fifoModel struct{ vals []uint64 }

func (m *fifoModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case queue.EnqueueOp:
		m.vals = append(m.vals, o.Val)
		return engine.PackBool(true)
	case queue.DequeueOp:
		if len(m.vals) == 0 {
			return engine.Pack(0, false)
		}
		v := m.vals[0]
		m.vals = m.vals[1:]
		return engine.Pack(v, true)
	}
	return 0
}

// setModel replays skip-set operations.
type setModel struct{ m map[uint64]bool }

func (sm *setModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case skipset.ContainsOp:
		return engine.PackBool(sm.m[o.K])
	case skipset.InsertOp:
		had := sm.m[o.K]
		sm.m[o.K] = true
		return engine.PackBool(!had)
	case skipset.RemoveOp:
		had := sm.m[o.K]
		delete(sm.m, o.K)
		return engine.PackBool(had)
	}
	return 0
}

// dequeuesLast mirrors queue.CombineMixed: enqueues splice first, dequeues
// serve afterwards.
func dequeuesLast(op engine.Op) int {
	if _, ok := op.(queue.DequeueOp); ok {
		return 1
	}
	return 0
}

func TestQueueLinearizableAllEngines(t *testing.T) {
	const threads, perThread = 8, 40
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			q := queue.New(env.Boot())
			rec := &Recorder{}
			eng := witnessedEngines(t, env, queue.Policies(), queue.CombineMixed, rec)[name]
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 8))
				for i := 0; i < perThread; i++ {
					if rng.IntN(2) == 0 {
						eng.Execute(th, queue.EnqueueOp{Q: q, Val: rng.Uint64() >> 1})
					} else {
						eng.Execute(th, queue.DequeueOp{Q: q})
					}
				}
			})
			if err := Check(rec, &fifoModel{}, threads*perThread, dequeuesLast); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The skip-set's CombineOps sorts its batch by key, so intra-batch replay
// order is not the announcement order: only the engines that never batch
// (Lock, TLE, SCM) are witness-checkable; the batching engines are covered
// by the skipset package's conservation tests.
func TestSkipSetLinearizableNonBatchingEngines(t *testing.T) {
	const threads, perThread = 8, 50
	for _, name := range []string{"Lock", "TLE", "SCM"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			s := skipset.New(env.Boot())
			rec := &Recorder{}
			eng := witnessedEngines(t, env, skipset.Policies(), skipset.CombineOps, rec)[name]
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 9))
				for i := 0; i < perThread; i++ {
					k := rng.Uint64N(64)
					switch rng.IntN(3) {
					case 0:
						eng.Execute(th, skipset.InsertOp{S: s, K: k, Level: skipset.RandomLevel(rng)})
					case 1:
						eng.Execute(th, skipset.ContainsOp{S: s, K: k})
					default:
						eng.Execute(th, skipset.RemoveOp{S: s, K: k})
					}
				}
			})
			if err := Check(rec, &setModel{m: map[uint64]bool{}}, threads*perThread, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// btreeModel replays B-tree set operations.
type btreeModel struct{ m map[uint64]bool }

func (bm *btreeModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case btree.ContainsOp:
		return engine.PackBool(bm.m[o.K])
	case btree.InsertOp:
		had := bm.m[o.K]
		bm.m[o.K] = true
		return engine.PackBool(!had)
	case btree.RemoveOp:
		had := bm.m[o.K]
		delete(bm.m, o.K)
		return engine.PackBool(had)
	}
	return 0
}

// The B-tree's CombineOps sorts batches by key, so only non-batching
// engines are witness-checkable (same situation as the skip set).
func TestBTreeLinearizableNonBatchingEngines(t *testing.T) {
	const threads, perThread = 8, 50
	for _, name := range []string{"Lock", "TLE", "SCM"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			tr := btree.New(env.Boot())
			rec := &Recorder{}
			eng := witnessedEngines(t, env, btree.Policies(), btree.CombineOps, rec)[name]
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 10))
				for i := 0; i < perThread; i++ {
					k := rng.Uint64N(96)
					switch rng.IntN(3) {
					case 0:
						eng.Execute(th, btree.InsertOp{T: tr, K: k})
					case 1:
						eng.Execute(th, btree.ContainsOp{T: tr, K: k})
					default:
						eng.Execute(th, btree.RemoveOp{T: tr, K: k})
					}
				}
			})
			if err := Check(rec, &btreeModel{m: map[uint64]bool{}}, threads*perThread, nil); err != nil {
				t.Fatal(err)
			}
			if msg := tr.CheckInvariants(env.Boot()); msg != "" {
				t.Fatal(msg)
			}
		})
	}
}
