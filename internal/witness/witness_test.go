package witness

import (
	"math/rand/v2"
	"sort"
	"strings"
	"testing"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/htm"
	"hcf/internal/memsim"
	"hcf/internal/seq/hashtable"
	"hcf/internal/seq/skiplist"
	"hcf/internal/seq/stack"
)

// --- models ---

// counterModel replays incOp applications.
type counterModel struct{ v uint64 }

func (m *counterModel) Apply(op engine.Op) uint64 {
	m.v++
	return m.v - 1
}

// mapModel replays hash-table operations.
type mapModel struct{ m map[uint64]uint64 }

func (mm *mapModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case hashtable.FindOp:
		v, ok := mm.m[o.Key]
		return engine.Pack(v, ok)
	case hashtable.InsertOp:
		_, existed := mm.m[o.Key]
		mm.m[o.Key] = o.Val
		return engine.PackBool(!existed)
	case hashtable.RemoveOp:
		_, existed := mm.m[o.Key]
		delete(mm.m, o.Key)
		return engine.PackBool(existed)
	}
	return 0
}

// pqModel replays priority-queue operations with a sorted multiset.
type pqModel struct{ keys []uint64 }

func (m *pqModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case skiplist.InsertOp:
		i := sort.Search(len(m.keys), func(i int) bool { return m.keys[i] >= o.Key })
		m.keys = append(m.keys, 0)
		copy(m.keys[i+1:], m.keys[i:])
		m.keys[i] = o.Key
		return engine.PackBool(true)
	case skiplist.RemoveMinOp:
		if len(m.keys) == 0 {
			return engine.Pack(0, false)
		}
		k := m.keys[0]
		m.keys = m.keys[1:]
		return engine.Pack(k, true)
	}
	return 0
}

// stackModel replays stack operations.
type stackModel struct{ vals []uint64 }

func (m *stackModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case stack.PushOp:
		m.vals = append(m.vals, o.Val)
		return engine.PackBool(true)
	case stack.PopOp:
		if len(m.vals) == 0 {
			return engine.Pack(0, false)
		}
		v := m.vals[len(m.vals)-1]
		m.vals = m.vals[:len(m.vals)-1]
		return engine.Pack(v, true)
	}
	return 0
}

// --- harness ---

type incOp struct{ addr memsim.Addr }

func (o incOp) Apply(ctx memsim.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o incOp) Class() int { return 0 }

func combineIncs(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	var addr memsim.Addr
	any := false
	for i, op := range ops {
		if !done[i] {
			addr = op.(incOp).addr
			any = true
		}
	}
	if !any {
		return
	}
	v := ctx.Load(addr)
	for i := range ops {
		if !done[i] {
			res[i] = v
			v++
			done[i] = true
		}
	}
	ctx.Store(addr, v)
}

// witnessedEngines builds all six engines with witnessing enabled.
func witnessedEngines(t *testing.T, env memsim.Env, policies []core.Policy,
	combine engine.CombineFunc, rec *Recorder) map[string]engine.Engine {
	t.Helper()
	hcf, err := core.New(env, core.Config{Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	opts := func() engines.Options { return engines.Options{Combine: combine} }
	all := map[string]engine.Engine{
		"Lock":   engines.NewLock(env, opts()),
		"TLE":    engines.NewTLE(env, opts()),
		"FC":     engines.NewFC(env, opts()),
		"SCM":    engines.NewSCM(env, opts()),
		"TLE+FC": engines.NewTLEFC(env, opts()),
		"HCF":    hcf,
	}
	for name, e := range all {
		we, ok := e.(engine.WitnessedEngine)
		if !ok {
			t.Fatalf("engine %s does not support witnessing", name)
		}
		we.SetWitness(rec.Func())
	}
	return all
}

// counterPolicies is the standard counter-workload HCF configuration.
func counterPolicies() []core.Policy {
	return []core.Policy{{
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		RunMulti:           combineIncs,
	}}
}

func TestCounterLinearizableAllEngines(t *testing.T) {
	const threads, perThread = 8, 50
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			rec := &Recorder{}
			eng := witnessedEngines(t, env, counterPolicies(), combineIncs, rec)[name]
			counter := env.Alloc(1)
			env.Run(func(th *memsim.Thread) {
				for i := 0; i < perThread; i++ {
					eng.Execute(th, incOp{addr: counter})
				}
			})
			if err := Check(rec, &counterModel{}, threads*perThread, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// insertsLast mirrors hashtable.CombineMixed's in-batch application order:
// Finds and Removes are applied at their scan positions, the combined
// Inserts afterwards.
func insertsLast(op engine.Op) int {
	if _, ok := op.(hashtable.InsertOp); ok {
		return 1
	}
	return 0
}

// removeMinsLast mirrors skiplist.CombineMixed: Inserts at their scan
// positions, the combined RemoveMins afterwards.
func removeMinsLast(op engine.Op) int {
	if _, ok := op.(skiplist.RemoveMinOp); ok {
		return 1
	}
	return 0
}

func TestHashTableLinearizableAllEngines(t *testing.T) {
	const threads, perThread = 8, 60
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			tbl := hashtable.New(env.Boot(), 64)
			rec := &Recorder{}
			eng := witnessedEngines(t, env, hashtable.Policies(), hashtable.CombineMixed, rec)[name]
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 5))
				for i := 0; i < perThread; i++ {
					key := rng.Uint64N(100)
					switch rng.IntN(3) {
					case 0:
						eng.Execute(th, hashtable.InsertOp{T: tbl, Key: key, Val: key * 3})
					case 1:
						eng.Execute(th, hashtable.FindOp{T: tbl, Key: key})
					default:
						eng.Execute(th, hashtable.RemoveOp{T: tbl, Key: key})
					}
				}
			})
			if err := Check(rec, &mapModel{m: map[uint64]uint64{}}, threads*perThread, insertsLast); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPriorityQueueLinearizableAllEngines(t *testing.T) {
	const threads, perThread = 8, 40
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			q := skiplist.New(env.Boot())
			rec := &Recorder{}
			eng := witnessedEngines(t, env, skiplist.Policies(), skiplist.CombineMixed, rec)[name]
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 6))
				for i := 0; i < perThread; i++ {
					if rng.IntN(2) == 0 {
						eng.Execute(th, skiplist.InsertOp{
							Q: q, Key: rng.Uint64N(500), Level: skiplist.RandomLevel(rng),
						})
					} else {
						eng.Execute(th, skiplist.RemoveMinOp{Q: q})
					}
				}
			})
			if err := Check(rec, &pqModel{}, threads*perThread, removeMinsLast); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStackLinearizableAllEngines(t *testing.T) {
	const threads, perThread = 8, 40
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			s := stack.New(env.Boot())
			rec := &Recorder{}
			eng := witnessedEngines(t, env, stack.Policies(), stack.Combine, rec)[name]
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 7))
				for i := 0; i < perThread; i++ {
					if rng.IntN(2) == 0 {
						eng.Execute(th, stack.PushOp{S: s, Val: rng.Uint64() >> 1})
					} else {
						eng.Execute(th, stack.PopOp{S: s})
					}
				}
			})
			if err := Check(rec, &stackModel{}, threads*perThread, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLinearizableUnderInjectedAborts(t *testing.T) {
	const threads, perThread = 6, 40
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	rec := &Recorder{}
	fw, err := core.New(env, core.Config{
		Policies: []core.Policy{{
			TryPrivateTrials:   2,
			TryVisibleTrials:   2,
			TryCombiningTrials: 3,
			RunMulti:           combineIncs,
		}},
		HTM: htm.Config{InjectAbortEvery: 4, NoisePPMPerLine: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	fw.SetWitness(rec.Func())
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < perThread; i++ {
			fw.Execute(th, incOp{addr: counter})
		}
	})
	if err := Check(rec, &counterModel{}, threads*perThread, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDetectsDivergence(t *testing.T) {
	rec := &Recorder{}
	fn := rec.Func()
	fn(2, 0, incOp{}, 0)
	fn(4, 0, incOp{}, 99) // wrong: replay expects 1
	if err := Check(rec, &counterModel{}, 2, nil); err == nil {
		t.Fatal("divergent history accepted")
	}
}

func TestCheckDetectsMissingApplications(t *testing.T) {
	rec := &Recorder{}
	rec.Func()(2, 0, incOp{}, 0)
	if err := Check(rec, &counterModel{}, 2, nil); err == nil {
		t.Fatal("missing application accepted")
	}
}

// fakeFlight is a FlightSource returning a fixed dump.
type fakeFlight struct{ dump string }

func (f fakeFlight) FlightDump(n int) string { return f.dump }

func TestCheckDumpAttachesFlightRecorder(t *testing.T) {
	rec := &Recorder{}
	fn := rec.Func()
	fn(2, 0, incOp{}, 0)
	fn(4, 0, incOp{}, 99) // wrong: replay expects 1
	fr := fakeFlight{dump: "t0 @5 done\n"}
	err := CheckDump(rec, &counterModel{}, 2, nil, fr, 10)
	if err == nil {
		t.Fatal("divergent history accepted")
	}
	if !strings.Contains(err.Error(), "flight recorder") ||
		!strings.Contains(err.Error(), "t0 @5 done") {
		t.Fatalf("error lacks the flight dump: %v", err)
	}

	// A passing check attaches nothing; a nil source degrades to Check.
	good := &Recorder{}
	good.Func()(2, 0, incOp{}, 0)
	if err := CheckDump(good, &counterModel{}, 1, nil, fr, 10); err != nil {
		t.Fatalf("passing check returned %v", err)
	}
	if err := CheckDump(rec, &counterModel{}, 2, nil, nil, 10); err == nil {
		t.Fatal("nil source hid the violation")
	} else if strings.Contains(err.Error(), "flight recorder") {
		t.Fatalf("nil source produced a dump: %v", err)
	}
}

func TestSerializationOrdering(t *testing.T) {
	rec := &Recorder{}
	fn := rec.Func()
	fn(4, 1, incOp{}, 11)
	fn(4, 0, incOp{}, 10)
	fn(2, 0, incOp{}, 9)
	got := rec.Serialization(nil)
	if got[0].Result != 9 || got[1].Result != 10 || got[2].Result != 11 {
		t.Fatalf("bad order: %+v", got)
	}
	if rec.Len() != 3 {
		t.Fatalf("Len = %d", rec.Len())
	}
}
