package workload

import (
	"math/rand/v2"
	"testing"
)

func TestScheduleSegments(t *testing.T) {
	s, err := NewSchedule(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 3 {
		t.Fatalf("Segments() = %d, want 3", s.Segments())
	}
	for _, c := range []struct {
		now  int64
		want int
	}{{0, 0}, {99, 0}, {100, 1}, {199, 1}, {200, 2}, {1 << 40, 2}} {
		if got := s.SegmentAt(c.now); got != c.want {
			t.Errorf("SegmentAt(%d) = %d, want %d", c.now, got, c.want)
		}
	}
	if s.Bound(0) != 0 || s.Bound(1) != 100 || s.Bound(2) != 200 {
		t.Errorf("bounds = %d %d %d", s.Bound(0), s.Bound(1), s.Bound(2))
	}
	empty, err := NewSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if empty.Segments() != 1 || empty.SegmentAt(12345) != 0 {
		t.Error("empty schedule must be one segment covering all of time")
	}
}

func TestScheduleValidation(t *testing.T) {
	for _, bounds := range [][]int64{{0}, {-5}, {100, 100}, {200, 100}} {
		if _, err := NewSchedule(bounds...); err == nil {
			t.Errorf("NewSchedule(%v) accepted non-ascending bounds", bounds)
		}
	}
}

func TestDriftMixFollowsSchedule(t *testing.T) {
	s, err := NewSchedule(1000)
	if err != nil {
		t.Fatal(err)
	}
	first, err := NewMix(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewMix(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriftMix(s, first, second)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 200; i++ {
		if got := d.PickAt(int64(i%1000), r); got != 0 {
			t.Fatalf("pre-drift pick = %d, want 0", got)
		}
		if got := d.PickAt(1000+int64(i), r); got != 1 {
			t.Fatalf("post-drift pick = %d, want 1", got)
		}
	}
	if d.Schedule() != s {
		t.Error("Schedule() does not return the coupled schedule")
	}
	if _, err := NewDriftMix(s, first); err == nil {
		t.Error("mix count != segment count accepted")
	}
	if _, err := NewDriftMix(nil, first, second); err == nil {
		t.Error("nil schedule accepted")
	}
}

func TestDriftKeysFollowsSchedule(t *testing.T) {
	s, err := NewSchedule(500)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriftKeys(s, Uniform{N: 8}, Uniform{N: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(3, 3))
	var wide bool
	for i := 0; i < 2000; i++ {
		if k := d.NextAt(int64(i%500), r); k >= 8 {
			t.Fatalf("pre-drift key %d outside narrow range", k)
		}
		if k := d.NextAt(500+int64(i), r); k >= 1<<20 {
			t.Fatalf("post-drift key %d outside wide range", k)
		} else if k >= 8 {
			wide = true
		}
	}
	if !wide {
		t.Error("post-drift keys never left the narrow range")
	}
	if d.Range() != 1<<20 {
		t.Errorf("Range() = %d, want widest segment range", d.Range())
	}
	if _, err := NewDriftKeys(s, Uniform{N: 8}); err == nil {
		t.Error("generator count != segment count accepted")
	}
	if _, err := NewDriftKeys(nil, Uniform{N: 8}, Uniform{N: 8}); err == nil {
		t.Error("nil schedule accepted")
	}
}

// TestDriftIsPureFunctionOfTimeAndRNG pins the determinism contract the
// autotune harness relies on: identical (time, rng-state) sequences produce
// identical drifting draws, independent of call history.
func TestDriftIsPureFunctionOfTimeAndRNG(t *testing.T) {
	s, err := NewSchedule(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewMix(90, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMix(50, 50)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := NewDriftMix(s, a, b, a)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := NewDriftKeys(s, Uniform{N: 64}, Uniform{N: 1024}, Uniform{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	draw := func() ([]int, []uint64) {
		r := rand.New(rand.NewPCG(9, 9))
		var ms []int
		var ks []uint64
		for now := int64(0); now < 300; now += 7 {
			ms = append(ms, mix.PickAt(now, r))
			ks = append(ks, keys.NextAt(now, r))
		}
		return ms, ks
	}
	m1, k1 := draw()
	m2, k2 := draw()
	for i := range m1 {
		if m1[i] != m2[i] || k1[i] != k2[i] {
			t.Fatalf("draw %d differs across replays: (%d,%d) vs (%d,%d)", i, m1[i], k1[i], m2[i], k2[i])
		}
	}
}

func TestRingSkewValidation(t *testing.T) {
	sched, _ := NewSchedule(100)
	mod4 := func(k uint64) int { return int(k % 4) }
	if _, err := NewRingSkew(Uniform{N: 64}, mod4, sched, []int{0, 1}, 101); err == nil {
		t.Error("hotPct > 100 accepted")
	}
	if _, err := NewRingSkew(Uniform{N: 64}, mod4, sched, []int{0}, 90); err == nil {
		t.Error("target count != segments accepted")
	}
	if _, err := NewRingSkew(Uniform{N: 64}, func(uint64) int { return 9 }, sched, []int{0, 1}, 90); err == nil {
		t.Error("target owning no keys accepted")
	}
}

// TestRingSkewDriftsHotShard pins the semantics the elastic figure
// rides on: during a skewed segment ~hotPct of keys route to the
// target shard, and the target moves when the schedule crosses a
// bound. Unskewed segments (target < 0) stay balanced.
func TestRingSkewDriftsHotShard(t *testing.T) {
	const shards, draws = 4, 20000
	owner := func(k uint64) int { return int((k * 0x9E3779B97F4A7C15) >> 62) }
	sched, err := NewSchedule(1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	skew, err := NewRingSkew(Uniform{N: 1 << 16}, owner, sched, []int{-1, 1, 3}, 90)
	if err != nil {
		t.Fatal(err)
	}
	if skew.Range() != 1<<16 {
		t.Fatalf("Range = %d", skew.Range())
	}
	share := func(now int64, shard int) float64 {
		r := rand.New(rand.NewPCG(42, uint64(now)))
		n := 0
		for i := 0; i < draws; i++ {
			if owner(skew.NextAt(now, r)) == shard {
				n++
			}
		}
		return float64(n) / draws
	}
	for s := 0; s < shards; s++ {
		if f := share(500, s); f < 0.15 || f > 0.35 {
			t.Errorf("unskewed segment: shard %d share %.2f", s, f)
		}
	}
	if f := share(1500, 1); f < 0.85 {
		t.Errorf("segment 1: hot shard 1 share %.2f, want >= 0.85", f)
	}
	if f := share(2500, 3); f < 0.85 {
		t.Errorf("segment 2: hot shard 3 share %.2f, want >= 0.85", f)
	}
	if f := share(2500, 1); f > 0.15 {
		t.Errorf("segment 2: old hot shard 1 still at %.2f", f)
	}
}
