package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// ArrivalGen draws open-loop inter-arrival gaps: operations arrive on their
// own schedule regardless of how fast the system drains them, which is the
// regime where queueing delay — and therefore tail latency — becomes
// visible. Closed-loop harnesses (a captive thread issues the next op the
// instant the previous one returns) cannot observe queueing at all; every
// generator here produces an *intended start time* stream instead.
//
// Generators are pure functions of (previous arrival time, rng), so an
// arrival schedule is deterministic per seed — the property every
// bit-identity test in this repository leans on.
type ArrivalGen interface {
	// Next returns the gap (in virtual cycles, >= 1) between the arrival at
	// time prev and the next one.
	Next(prev int64, r *rand.Rand) int64
	// Rate returns the generator's long-run mean arrival rate in
	// operations per million cycles (ops/Mcycle).
	Rate() float64
}

// expGap draws an exponential inter-arrival gap for a Poisson process with
// the given rate (ops/Mcycle), clamped to >= 1 cycle so arrival schedules
// always make progress.
func expGap(rate float64, r *rand.Rand) int64 {
	mean := 1e6 / rate // cycles between arrivals
	g := int64(math.Round(r.ExpFloat64() * mean))
	if g < 1 {
		return 1
	}
	return g
}

// Poisson is a memoryless arrival process with a fixed mean rate — the
// standard model for a large population of independent users each issuing
// requests at a small individual rate.
type Poisson struct {
	rate float64 // ops per Mcycle
}

var _ ArrivalGen = Poisson{}

// NewPoisson builds a Poisson arrival process with the given aggregate rate
// in operations per million cycles.
func NewPoisson(rate float64) (Poisson, error) {
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return Poisson{}, fmt.Errorf("workload: poisson rate must be positive and finite, got %v", rate)
	}
	return Poisson{rate: rate}, nil
}

// NewPopulation models `users` simulated users who each issue one operation
// every `thinkCycles` virtual cycles on average. For large populations the
// superposition of the per-user processes is Poisson with aggregate rate
// users/thinkCycles — this is the "millions of users" knob: the offered
// load is set by the population, not by how fast the system responds.
func NewPopulation(users uint64, thinkCycles int64) (Poisson, error) {
	if users == 0 {
		return Poisson{}, fmt.Errorf("workload: population needs at least one user")
	}
	if thinkCycles <= 0 {
		return Poisson{}, fmt.Errorf("workload: think time must be positive, got %d", thinkCycles)
	}
	return NewPoisson(float64(users) / float64(thinkCycles) * 1e6)
}

// Next implements ArrivalGen.
func (p Poisson) Next(_ int64, r *rand.Rand) int64 { return expGap(p.rate, r) }

// Rate implements ArrivalGen.
func (p Poisson) Rate() float64 { return p.rate }

// Bursty is a Markov-modulated Poisson process with a square-wave rate: each
// period of `Period` cycles spends the first Duty fraction at Peak rate and
// the rest at Base rate. It models flash crowds and diurnal-style load
// swings compressed to simulator scale — the arrivals a burst-intolerant
// system (small queues, slow combiner ramp-up) handles worst.
type Bursty struct {
	base, peak float64 // ops per Mcycle
	period     int64   // cycles
	duty       float64 // fraction of the period at peak rate, in (0, 1)
}

var _ ArrivalGen = Bursty{}

// NewBursty builds a bursty process alternating between peak and base rate.
func NewBursty(base, peak float64, period int64, duty float64) (Bursty, error) {
	if base <= 0 || peak <= 0 {
		return Bursty{}, fmt.Errorf("workload: bursty rates must be positive, got base %v peak %v", base, peak)
	}
	if peak < base {
		return Bursty{}, fmt.Errorf("workload: bursty peak %v below base %v", peak, base)
	}
	if period <= 1 {
		return Bursty{}, fmt.Errorf("workload: bursty period must exceed 1 cycle, got %d", period)
	}
	if duty <= 0 || duty >= 1 {
		return Bursty{}, fmt.Errorf("workload: bursty duty %v outside (0,1)", duty)
	}
	return Bursty{base: base, peak: peak, period: period, duty: duty}, nil
}

// rateAt returns the instantaneous rate at time now.
func (b Bursty) rateAt(now int64) float64 {
	phase := now % b.period
	if phase < 0 {
		phase += b.period
	}
	if float64(phase) < b.duty*float64(b.period) {
		return b.peak
	}
	return b.base
}

// Next implements ArrivalGen: the gap is drawn at the rate in force at the
// previous arrival. (A gap can straddle a phase boundary; for period >>
// mean gap the distortion is negligible, and determinism is exact either
// way.)
func (b Bursty) Next(prev int64, r *rand.Rand) int64 { return expGap(b.rateAt(prev), r) }

// Rate implements ArrivalGen: the duty-weighted mean rate.
func (b Bursty) Rate() float64 { return b.duty*b.peak + (1-b.duty)*b.base }

// DriftArrivals is an arrival process whose rate model shifts over virtual
// time: one ArrivalGen per Schedule segment, the same drift knob DriftMix
// and DriftKeys use — so offered load can drift mid-run in lockstep with
// the operation mix and key distribution.
type DriftArrivals struct {
	sched *Schedule
	gens  []ArrivalGen
}

var _ ArrivalGen = (*DriftArrivals)(nil)

// NewDriftArrivals couples a schedule with one arrival generator per
// segment.
func NewDriftArrivals(sched *Schedule, gens ...ArrivalGen) (*DriftArrivals, error) {
	if sched == nil {
		return nil, fmt.Errorf("workload: drift arrivals need a schedule")
	}
	if len(gens) != sched.Segments() {
		return nil, fmt.Errorf("workload: drift arrivals got %d generators for %d segments", len(gens), sched.Segments())
	}
	return &DriftArrivals{sched: sched, gens: gens}, nil
}

// Next implements ArrivalGen using the segment in force at prev.
func (d *DriftArrivals) Next(prev int64, r *rand.Rand) int64 {
	return d.gens[d.sched.SegmentAt(prev)].Next(prev, r)
}

// Rate implements ArrivalGen: the maximum segment rate (the bound a sizing
// decision must plan for).
func (d *DriftArrivals) Rate() float64 {
	var m float64
	for _, g := range d.gens {
		m = max(m, g.Rate())
	}
	return m
}

// Schedule generates an intended-arrival-time schedule: every arrival time
// in [0, horizon), strictly increasing, drawn from gen with r. The returned
// times are the open-loop contract — each operation's latency is measured
// from its intended time, never from when a worker got around to dequeuing
// it, which is what makes the recorded percentiles coordinated-omission
// safe.
func GenSchedule(gen ArrivalGen, horizon int64, r *rand.Rand) []int64 {
	if horizon <= 0 {
		return nil
	}
	// Pre-size from the mean rate; overload schedules are bounded by the
	// horizon, not by completion, so this cannot run away.
	est := int(gen.Rate() * float64(horizon) / 1e6)
	out := make([]int64, 0, est+8)
	now := int64(0)
	for {
		now += gen.Next(now, r)
		if now >= horizon {
			return out
		}
		out = append(out, now)
	}
}
