package workload

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestPoissonMeanRate(t *testing.T) {
	gen, err := NewPoisson(500) // 500 ops/Mcycle => mean gap 2000 cycles
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(1, 2))
	const horizon = 10_000_000
	sched := GenSchedule(gen, horizon, r)
	got := float64(len(sched)) / horizon * 1e6
	if math.Abs(got-500)/500 > 0.05 {
		t.Fatalf("poisson empirical rate %.1f ops/Mcycle, want ~500", got)
	}
	for i := 1; i < len(sched); i++ {
		if sched[i] <= sched[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d: %d then %d", i, sched[i-1], sched[i])
		}
	}
	if len(sched) > 0 && sched[len(sched)-1] >= horizon {
		t.Fatalf("arrival %d at or past horizon %d", sched[len(sched)-1], horizon)
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	gen, err := NewPoisson(1000)
	if err != nil {
		t.Fatal(err)
	}
	a := GenSchedule(gen, 1_000_000, rand.New(rand.NewPCG(7, 9)))
	b := GenSchedule(gen, 1_000_000, rand.New(rand.NewPCG(7, 9)))
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPopulationRate(t *testing.T) {
	// 1e6 users thinking 1e9 cycles each => 1e6/1e9*1e6 = 1000 ops/Mcycle.
	gen, err := NewPopulation(1_000_000, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gen.Rate()-1000) > 1e-9 {
		t.Fatalf("population rate %.3f, want 1000", gen.Rate())
	}
	if _, err := NewPopulation(0, 100); err == nil {
		t.Fatal("expected error for zero users")
	}
	if _, err := NewPopulation(10, 0); err == nil {
		t.Fatal("expected error for zero think time")
	}
}

func TestPoissonRejectsBadRate(t *testing.T) {
	for _, rate := range []float64{0, -3, math.Inf(1), math.NaN()} {
		if _, err := NewPoisson(rate); err == nil {
			t.Fatalf("expected error for rate %v", rate)
		}
	}
}

func TestBurstyModulation(t *testing.T) {
	// 20% of each 1M-cycle period at 2000 ops/Mcycle, the rest at 200. The
	// period is chosen >> the base-rate mean gap (5000 cycles) so
	// phase-boundary straddling stays a small fraction of each phase.
	gen, err := NewBursty(200, 2000, 1_000_000, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.2*2000 + 0.8*200
	if math.Abs(gen.Rate()-wantMean) > 1e-9 {
		t.Fatalf("bursty mean rate %.2f, want %.2f", gen.Rate(), wantMean)
	}
	r := rand.New(rand.NewPCG(3, 4))
	const horizon = 50_000_000
	sched := GenSchedule(gen, horizon, r)
	// Count arrivals landing in the peak vs base phase of each period.
	var peak, base int
	for _, at := range sched {
		if at%1_000_000 < 200_000 {
			peak++
		} else {
			base++
		}
	}
	peakRate := float64(peak) / (0.2 * horizon) * 1e6
	baseRate := float64(base) / (0.8 * horizon) * 1e6
	if peakRate < 5*baseRate {
		t.Fatalf("peak rate %.1f not clearly above base rate %.1f", peakRate, baseRate)
	}
	if math.Abs(peakRate-2000)/2000 > 0.1 {
		t.Fatalf("peak empirical rate %.1f, want ~2000", peakRate)
	}
	if math.Abs(baseRate-200)/200 > 0.15 {
		t.Fatalf("base empirical rate %.1f, want ~200", baseRate)
	}
}

func TestBurstyRejectsBadConfig(t *testing.T) {
	cases := []struct {
		base, peak float64
		period     int64
		duty       float64
	}{
		{0, 100, 1000, 0.5},
		{100, 0, 1000, 0.5},
		{200, 100, 1000, 0.5}, // peak below base
		{100, 200, 1, 0.5},
		{100, 200, 1000, 0},
		{100, 200, 1000, 1},
	}
	for _, c := range cases {
		if _, err := NewBursty(c.base, c.peak, c.period, c.duty); err == nil {
			t.Fatalf("expected error for %+v", c)
		}
	}
}

func TestDriftArrivals(t *testing.T) {
	sched, err := NewSchedule(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	slow, _ := NewPoisson(100)
	fast, _ := NewPoisson(1000)
	gen, err := NewDriftArrivals(sched, slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Rate() != 1000 {
		t.Fatalf("drift rate %.1f, want max segment rate 1000", gen.Rate())
	}
	r := rand.New(rand.NewPCG(5, 6))
	arr := GenSchedule(gen, 2_000_000, r)
	var before, after int
	for _, at := range arr {
		if at < 1_000_000 {
			before++
		} else {
			after++
		}
	}
	if after < 5*before {
		t.Fatalf("drift segments not reflected: %d arrivals before boundary, %d after", before, after)
	}

	if _, err := NewDriftArrivals(nil, slow); err == nil {
		t.Fatal("expected error for nil schedule")
	}
	if _, err := NewDriftArrivals(sched, slow); err == nil {
		t.Fatal("expected error for generator/segment count mismatch")
	}
}

func TestGenScheduleEmptyHorizon(t *testing.T) {
	gen, _ := NewPoisson(1000)
	if got := GenSchedule(gen, 0, rand.New(rand.NewPCG(1, 1))); got != nil {
		t.Fatalf("zero horizon produced %d arrivals", len(got))
	}
}
