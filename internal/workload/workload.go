// Package workload provides the key and operation-mix generators used by
// the paper's experiments: uniform keys for the hash table (§3.3), a
// Zipfian distribution with parameter theta in [0,1) for the skewed AVL
// workloads (§3.4, using the standard Gray et al. generator YCSB also
// uses), and weighted operation mixes.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// KeyGen draws keys from some distribution.
type KeyGen interface {
	// Next draws a key using r.
	Next(r *rand.Rand) uint64
	// Range returns the exclusive upper bound of generated keys.
	Range() uint64
}

// Uniform draws keys uniformly from [0, N).
type Uniform struct {
	N uint64
}

var _ KeyGen = Uniform{}

// Next implements KeyGen.
func (u Uniform) Next(r *rand.Rand) uint64 { return r.Uint64N(u.N) }

// Range implements KeyGen.
func (u Uniform) Range() uint64 { return u.N }

// Zipf draws keys from [0, n) with a Zipfian distribution of skew theta in
// [0, 1): higher theta gives the lower part of the key range higher
// probability (the paper's Figure 5 uses theta = 0.9).
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // (1 + 0.5^theta) threshold precomputed
}

var _ KeyGen = (*Zipf)(nil)

// NewZipf builds a generator over [0, n) with skew theta in [0, 1).
func NewZipf(n uint64, theta float64) (*Zipf, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: zipf needs a nonempty range")
	}
	if theta < 0 || theta >= 1 {
		return nil, fmt.Errorf("workload: zipf theta %v outside [0,1)", theta)
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	zeta2 := zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	z.half = 1 + math.Pow(0.5, theta)
	return z, nil
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements KeyGen (Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases", SIGMOD 1994).
func (z *Zipf) Next(r *rand.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Range implements KeyGen.
func (z *Zipf) Range() uint64 { return z.n }

// ShardSkew skews an underlying key stream toward one shard under
// key-mod-shards routing: hotPct percent of draws are remapped into the hot
// shard's residue class (keeping the source distribution otherwise). It
// models an unbalanced router — the worst case for a sharded engine, which
// at 100% degenerates to a single combiner plus routing overhead.
type ShardSkew struct {
	inner  KeyGen
	shards uint64
	hot    uint64
	hotPct uint64
}

var _ KeyGen = (*ShardSkew)(nil)

// NewShardSkew wraps inner so that hotPct% of keys land on shard hot of
// shards (by key mod shards).
func NewShardSkew(inner KeyGen, shards, hot, hotPct int) (*ShardSkew, error) {
	if shards < 1 {
		return nil, fmt.Errorf("workload: shard skew needs >= 1 shard, got %d", shards)
	}
	if hot < 0 || hot >= shards {
		return nil, fmt.Errorf("workload: hot shard %d outside [0,%d)", hot, shards)
	}
	if hotPct < 0 || hotPct > 100 {
		return nil, fmt.Errorf("workload: hot percentage %d outside [0,100]", hotPct)
	}
	if inner.Range() < uint64(shards) {
		return nil, fmt.Errorf("workload: key range %d smaller than %d shards", inner.Range(), shards)
	}
	return &ShardSkew{inner: inner, shards: uint64(shards), hot: uint64(hot), hotPct: uint64(hotPct)}, nil
}

// Next implements KeyGen.
func (s *ShardSkew) Next(r *rand.Rand) uint64 {
	k := s.inner.Next(r)
	if r.Uint64N(100) >= s.hotPct {
		return k
	}
	// Snap k to the hot residue class; if that overshoots the range, step
	// back one stride (k - k%shards >= shards whenever that happens, so no
	// underflow).
	k = k - k%s.shards + s.hot
	if k >= s.inner.Range() {
		k -= s.shards
	}
	return k
}

// Range implements KeyGen.
func (s *ShardSkew) Range() uint64 { return s.inner.Range() }

// Mix picks an operation kind from weighted percentages.
type Mix struct {
	cum []int
}

// NewMix builds a mix from percentage weights (they must sum to 100).
func NewMix(weights ...int) (*Mix, error) {
	total := 0
	cum := make([]int, len(weights))
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("workload: negative weight %d", w)
		}
		total += w
		cum[i] = total
	}
	if total != 100 {
		return nil, fmt.Errorf("workload: weights sum to %d, want 100", total)
	}
	return &Mix{cum: cum}, nil
}

// Pick draws an operation kind index.
func (m *Mix) Pick(r *rand.Rand) int {
	x := int(r.Uint64N(100))
	for i, c := range m.cum {
		if x < c {
			return i
		}
	}
	return len(m.cum) - 1
}

// UpdateMix is the paper's standard mix shape: findPct% Finds with the
// remainder split evenly between Inserts and Removes (kind indices: 0 find,
// 1 insert, 2 remove).
func UpdateMix(findPct int) (*Mix, error) {
	if findPct < 0 || findPct > 100 {
		return nil, fmt.Errorf("workload: find percentage %d outside [0,100]", findPct)
	}
	rest := 100 - findPct
	ins := rest / 2
	return NewMix(findPct, ins, rest-ins)
}

// Schedule maps virtual time to a workload segment index: segment i covers
// [bounds[i-1], bounds[i]) with bounds[-1] = 0 and an implicit final
// segment from the last bound to infinity. It is the drift knob shared by
// DriftMix and DriftKeys: generators stay pure functions of (time, rng), so
// drifting workloads remain deterministic per seed.
type Schedule struct {
	bounds []int64
}

// NewSchedule builds a schedule from strictly ascending positive segment
// boundaries. No bounds means a single segment covering all of time.
func NewSchedule(bounds ...int64) (*Schedule, error) {
	prev := int64(0)
	for _, b := range bounds {
		if b <= prev {
			return nil, fmt.Errorf("workload: schedule bounds must be strictly ascending and positive, got %v", bounds)
		}
		prev = b
	}
	return &Schedule{bounds: append([]int64(nil), bounds...)}, nil
}

// Segments returns the number of segments (bounds + 1).
func (s *Schedule) Segments() int { return len(s.bounds) + 1 }

// SegmentAt returns the segment index covering time now.
func (s *Schedule) SegmentAt(now int64) int {
	for i, b := range s.bounds {
		if now < b {
			return i
		}
	}
	return len(s.bounds)
}

// Bound returns the start time of segment i (0 for the first segment).
func (s *Schedule) Bound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return s.bounds[i-1]
}

// DriftMix is an operation mix whose weights shift over virtual time: one
// Mix per schedule segment. It models workloads whose character changes
// mid-run — the case an online policy tuner must detect and follow.
type DriftMix struct {
	sched *Schedule
	mixes []*Mix
}

// NewDriftMix couples a schedule with one mix per segment.
func NewDriftMix(sched *Schedule, mixes ...*Mix) (*DriftMix, error) {
	if sched == nil {
		return nil, fmt.Errorf("workload: drift mix needs a schedule")
	}
	if len(mixes) != sched.Segments() {
		return nil, fmt.Errorf("workload: drift mix got %d mixes for %d segments", len(mixes), sched.Segments())
	}
	return &DriftMix{sched: sched, mixes: mixes}, nil
}

// PickAt draws an operation kind for virtual time now.
func (d *DriftMix) PickAt(now int64, r *rand.Rand) int {
	return d.mixes[d.sched.SegmentAt(now)].Pick(r)
}

// Schedule returns the drift schedule.
func (d *DriftMix) Schedule() *Schedule { return d.sched }

// DriftKeys is a key generator whose distribution shifts over virtual
// time: one KeyGen per schedule segment (e.g. a wide uniform range that
// collapses to a hot subset mid-run).
type DriftKeys struct {
	sched *Schedule
	gens  []KeyGen
}

// NewDriftKeys couples a schedule with one key generator per segment.
func NewDriftKeys(sched *Schedule, gens ...KeyGen) (*DriftKeys, error) {
	if sched == nil {
		return nil, fmt.Errorf("workload: drift keys need a schedule")
	}
	if len(gens) != sched.Segments() {
		return nil, fmt.Errorf("workload: drift keys got %d generators for %d segments", len(gens), sched.Segments())
	}
	return &DriftKeys{sched: sched, gens: gens}, nil
}

// NextAt draws a key for virtual time now.
func (d *DriftKeys) NextAt(now int64, r *rand.Rand) uint64 {
	return d.gens[d.sched.SegmentAt(now)].Next(r)
}

// Range returns the largest exclusive upper bound across segments.
func (d *DriftKeys) Range() uint64 {
	var n uint64
	for _, g := range d.gens {
		n = max(n, g.Range())
	}
	return n
}

// RingSkew skews a key stream toward the shard of a consistent-hash
// ring that owns a drifting target. Hash routing spreads any contiguous
// hot key *range* uniformly over shards, so — unlike ShardSkew's
// residue-class remap for mod routing — forming a hot shard requires
// drawing from the set of keys the ring actually routes to one shard.
// RingSkew precomputes that set per schedule segment against the
// *initial* ring: when the hot shard later splits, the same hot set
// spreads over the two halves, which is exactly the healing mechanism
// the elastic layer is built to exercise. A negative target marks an
// unskewed segment (balanced traffic).
//
// Like DriftKeys, it is a pure function of (time, rng): drifting skew
// stays deterministic per seed.
type RingSkew struct {
	inner  KeyGen
	hotPct uint64
	sched  *Schedule
	hot    [][]uint64 // per segment: keys owned by the target, nil = unskewed
}

// ringSkewScanCap bounds the per-segment hot-set precomputation scan.
const ringSkewScanCap = 1 << 20

// Owner abstracts the route.Ring lookup (avoids a package cycle and
// keeps workload testable with a plain func).
type Owner func(key uint64) int

// NewRingSkew builds a drifting ring-skew generator: in schedule
// segment i, hotPct percent of draws are replaced by a uniform draw
// from the keys that owner routes to targets[i] (drawn from
// [0, inner.Range()), capped at the first 2^20 keys). targets[i] < 0
// leaves segment i unskewed.
func NewRingSkew(inner KeyGen, owner Owner, sched *Schedule, targets []int, hotPct int) (*RingSkew, error) {
	if hotPct < 0 || hotPct > 100 {
		return nil, fmt.Errorf("workload: hot percentage %d outside [0,100]", hotPct)
	}
	if len(targets) != sched.Segments() {
		return nil, fmt.Errorf("workload: ring skew got %d targets for %d segments", len(targets), sched.Segments())
	}
	s := &RingSkew{inner: inner, hotPct: uint64(hotPct), sched: sched, hot: make([][]uint64, len(targets))}
	scan := min(inner.Range(), ringSkewScanCap)
	for i, tgt := range targets {
		if tgt < 0 {
			continue
		}
		var keys []uint64
		for k := uint64(0); k < scan; k++ {
			if owner(k) == tgt {
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			return nil, fmt.Errorf("workload: ring skew target %d owns no keys in [0,%d)", tgt, scan)
		}
		s.hot[i] = keys
	}
	return s, nil
}

// NextAt draws a key for virtual time now.
func (s *RingSkew) NextAt(now int64, r *rand.Rand) uint64 {
	k := s.inner.Next(r)
	hot := s.hot[s.sched.SegmentAt(now)]
	if hot == nil || r.Uint64N(100) >= s.hotPct {
		return k
	}
	return hot[r.Uint64N(uint64(len(hot)))]
}

// Range implements the KeyGen range contract.
func (s *RingSkew) Range() uint64 { return s.inner.Range() }

// Next implements KeyGen at virtual time 0 — the static use of a ring
// skew (single segment, fixed target).
func (s *RingSkew) Next(r *rand.Rand) uint64 { return s.NextAt(0, r) }
