package workload

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestUniformBoundsAndCoverage(t *testing.T) {
	u := Uniform{N: 16}
	r := rand.New(rand.NewPCG(1, 1))
	seen := make([]int, 16)
	for i := 0; i < 10000; i++ {
		k := u.Next(r)
		if k >= 16 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k]++
	}
	for k, c := range seen {
		if c == 0 {
			t.Fatalf("key %d never drawn", k)
		}
	}
	if u.Range() != 16 {
		t.Fatal("Range wrong")
	}
}

func TestZipfBounds(t *testing.T) {
	z, err := NewZipf(1024, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 100000; i++ {
		if k := z.Next(r); k >= 1024 {
			t.Fatalf("key %d out of range", k)
		}
	}
	if z.Range() != 1024 {
		t.Fatal("Range wrong")
	}
}

func TestZipfSkewIncreasesHeadMass(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	mass := func(theta float64) float64 {
		z, err := NewZipf(1024, theta)
		if err != nil {
			t.Fatal(err)
		}
		head := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.Next(r) < 16 {
				head++
			}
		}
		return float64(head) / n
	}
	m0 := mass(0)
	m5 := mass(0.5)
	m9 := mass(0.9)
	if !(m0 < m5 && m5 < m9) {
		t.Fatalf("head mass not increasing with skew: %.3f %.3f %.3f", m0, m5, m9)
	}
	// theta=0 is uniform: head mass should be about 16/1024.
	if math.Abs(m0-16.0/1024) > 0.01 {
		t.Fatalf("theta=0 head mass %.4f, want ~%.4f", m0, 16.0/1024)
	}
	// theta=0.9 concentrates heavily.
	if m9 < 0.3 {
		t.Fatalf("theta=0.9 head mass %.3f, expected heavy skew", m9)
	}
}

func TestZipfZetaSmall(t *testing.T) {
	// zeta(3, 1->0.0) = 1 + 1/2^0 + 1/3^0 = 3 at theta 0.
	if got := zeta(3, 0); got != 3 {
		t.Fatalf("zeta(3,0) = %v", got)
	}
	want := 1 + 1/math.Sqrt(2) + 1/math.Sqrt(3)
	if got := zeta(3, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zeta(3,0.5) = %v, want %v", got, want)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 0.5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(10, 1.0); err == nil {
		t.Error("theta=1 accepted")
	}
	if _, err := NewZipf(10, -0.1); err == nil {
		t.Error("negative theta accepted")
	}
}

func TestMixFrequencies(t *testing.T) {
	m, err := NewMix(40, 30, 30)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(4, 4))
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[m.Pick(r)]++
	}
	for i, want := range []float64{0.4, 0.3, 0.3} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("kind %d frequency %.3f, want %.2f", i, got, want)
		}
	}
}

func TestMixValidation(t *testing.T) {
	if _, err := NewMix(50, 30); err == nil {
		t.Error("sum != 100 accepted")
	}
	if _, err := NewMix(120, -20); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestUpdateMixShapes(t *testing.T) {
	for _, findPct := range []int{0, 40, 80, 100} {
		m, err := UpdateMix(findPct)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewPCG(uint64(findPct), 5))
		counts := make([]int, 3)
		for i := 0; i < 50000; i++ {
			counts[m.Pick(r)]++
		}
		got := float64(counts[0]) / 50000
		if math.Abs(got-float64(findPct)/100) > 0.01 {
			t.Fatalf("findPct %d: observed %.3f", findPct, got)
		}
		// Insert and remove shares should be nearly equal.
		if d := counts[1] - counts[2]; d > 1500 || d < -1500 {
			t.Fatalf("findPct %d: insert/remove imbalance: %v", findPct, counts)
		}
	}
	if _, err := UpdateMix(101); err == nil {
		t.Error("out-of-range find percentage accepted")
	}
}
