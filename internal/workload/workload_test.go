package workload

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestUniformBoundsAndCoverage(t *testing.T) {
	u := Uniform{N: 16}
	r := rand.New(rand.NewPCG(1, 1))
	seen := make([]int, 16)
	for i := 0; i < 10000; i++ {
		k := u.Next(r)
		if k >= 16 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k]++
	}
	for k, c := range seen {
		if c == 0 {
			t.Fatalf("key %d never drawn", k)
		}
	}
	if u.Range() != 16 {
		t.Fatal("Range wrong")
	}
}

func TestZipfBounds(t *testing.T) {
	z, err := NewZipf(1024, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 100000; i++ {
		if k := z.Next(r); k >= 1024 {
			t.Fatalf("key %d out of range", k)
		}
	}
	if z.Range() != 1024 {
		t.Fatal("Range wrong")
	}
}

func TestZipfSkewIncreasesHeadMass(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	mass := func(theta float64) float64 {
		z, err := NewZipf(1024, theta)
		if err != nil {
			t.Fatal(err)
		}
		head := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.Next(r) < 16 {
				head++
			}
		}
		return float64(head) / n
	}
	m0 := mass(0)
	m5 := mass(0.5)
	m9 := mass(0.9)
	if !(m0 < m5 && m5 < m9) {
		t.Fatalf("head mass not increasing with skew: %.3f %.3f %.3f", m0, m5, m9)
	}
	// theta=0 is uniform: head mass should be about 16/1024.
	if math.Abs(m0-16.0/1024) > 0.01 {
		t.Fatalf("theta=0 head mass %.4f, want ~%.4f", m0, 16.0/1024)
	}
	// theta=0.9 concentrates heavily.
	if m9 < 0.3 {
		t.Fatalf("theta=0.9 head mass %.3f, expected heavy skew", m9)
	}
}

func TestZipfZetaSmall(t *testing.T) {
	// zeta(3, 1->0.0) = 1 + 1/2^0 + 1/3^0 = 3 at theta 0.
	if got := zeta(3, 0); got != 3 {
		t.Fatalf("zeta(3,0) = %v", got)
	}
	want := 1 + 1/math.Sqrt(2) + 1/math.Sqrt(3)
	if got := zeta(3, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zeta(3,0.5) = %v, want %v", got, want)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 0.5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(10, 1.0); err == nil {
		t.Error("theta=1 accepted")
	}
	if _, err := NewZipf(10, -0.1); err == nil {
		t.Error("negative theta accepted")
	}
}

func TestMixFrequencies(t *testing.T) {
	m, err := NewMix(40, 30, 30)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(4, 4))
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[m.Pick(r)]++
	}
	for i, want := range []float64{0.4, 0.3, 0.3} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("kind %d frequency %.3f, want %.2f", i, got, want)
		}
	}
}

func TestMixValidation(t *testing.T) {
	if _, err := NewMix(50, 30); err == nil {
		t.Error("sum != 100 accepted")
	}
	if _, err := NewMix(120, -20); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestUpdateMixShapes(t *testing.T) {
	for _, findPct := range []int{0, 40, 80, 100} {
		m, err := UpdateMix(findPct)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewPCG(uint64(findPct), 5))
		counts := make([]int, 3)
		for i := 0; i < 50000; i++ {
			counts[m.Pick(r)]++
		}
		got := float64(counts[0]) / 50000
		if math.Abs(got-float64(findPct)/100) > 0.01 {
			t.Fatalf("findPct %d: observed %.3f", findPct, got)
		}
		// Insert and remove shares should be nearly equal.
		if d := counts[1] - counts[2]; d > 1500 || d < -1500 {
			t.Fatalf("findPct %d: insert/remove imbalance: %v", findPct, counts)
		}
	}
	if _, err := UpdateMix(101); err == nil {
		t.Error("out-of-range find percentage accepted")
	}
}

func TestShardSkewValidation(t *testing.T) {
	u := Uniform{N: 64}
	if _, err := NewShardSkew(u, 0, 0, 50); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewShardSkew(u, 4, 4, 50); err == nil {
		t.Error("hot shard outside range accepted")
	}
	if _, err := NewShardSkew(u, 4, -1, 50); err == nil {
		t.Error("negative hot shard accepted")
	}
	if _, err := NewShardSkew(u, 4, 0, 101); err == nil {
		t.Error("hot percentage above 100 accepted")
	}
	if _, err := NewShardSkew(Uniform{N: 2}, 4, 0, 50); err == nil {
		t.Error("key range smaller than shard count accepted")
	}
}

func TestShardSkewDistribution(t *testing.T) {
	const shards, hot, n = 4, 2, 50000
	for _, hotPct := range []int{0, 50, 100} {
		s, err := NewShardSkew(Uniform{N: 64}, shards, hot, hotPct)
		if err != nil {
			t.Fatal(err)
		}
		if s.Range() != 64 {
			t.Fatalf("Range = %d, want the inner generator's 64", s.Range())
		}
		r := rand.New(rand.NewPCG(uint64(hotPct), 9))
		onHot := 0
		for i := 0; i < n; i++ {
			k := s.Next(r)
			if k >= 64 {
				t.Fatalf("hotPct %d: key %d outside the inner range", hotPct, k)
			}
			if k%shards == hot {
				onHot++
			}
		}
		// hotPct% of draws are forced onto the hot shard; the rest fall
		// there uniformly at 1/shards.
		want := float64(hotPct)/100 + (1-float64(hotPct)/100)/shards
		if got := float64(onHot) / n; math.Abs(got-want) > 0.02 {
			t.Fatalf("hotPct %d: hot-shard share %.3f, want ~%.3f", hotPct, got, want)
		}
	}
}

// TestShardSkewPassthrough pins that hotPct = 0 never perturbs the inner
// stream: the wrapped generator must still burn one skew draw per key, but
// the keys themselves are the inner sequence.
func TestShardSkewPassthrough(t *testing.T) {
	s, err := NewShardSkew(Uniform{N: 64}, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ra := rand.New(rand.NewPCG(7, 7))
	rb := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 1000; i++ {
		want := Uniform{N: 64}.Next(rb)
		rb.Uint64N(100) // the skew decision draw
		if got := s.Next(ra); got != want {
			t.Fatalf("draw %d: got %d, inner stream has %d", i, got, want)
		}
	}
}
