// Package metrics exposes the HCF observability layer for users of the hcf
// module: lock-free per-thread latency histograms (log₂ buckets, p50/p90/
// p99/max) recorded per operation class × completion path, a time-series
// sampler producing per-interval throughput/abort/combining records, and
// exporters for JSON, CSV and the Prometheus text exposition format.
//
//	rec := metrics.MustNew(metrics.Config{
//		Shards:   threads + 1,
//		Classes:  []string{"find", "insert", "remove"},
//		Paths:    fw.CompletionPaths(),
//		TimeUnit: "cycles",
//	})
//	fw.SetRecorder(rec)
//	sampler := metrics.NewSampler(rec, 10_000)
//	env.Run(...)                    // thread 0: sampler.MaybeSample(th.Now())
//	sampler.Flush(end)
//	report := metrics.BuildReport(rec, sampler, "myrun", fw.Name(), threads)
//	out, _ := report.JSON()
//
// All engines in this module (the HCF framework and the five baselines)
// accept a recorder via SetRecorder; a nil recorder leaves only a nil
// check on the hot path. See cmd/hcfmetrics for a ready-made command and
// docs/OBSERVABILITY.md for the full guide.
package metrics

import "hcf/internal/metrics"

// Core types, re-exported from the internal implementation.
type (
	// Config dimensions a Recorder (shards, class/path/outcome labels).
	Config = metrics.Config
	// Recorder accumulates sharded histograms and counters.
	Recorder = metrics.Recorder
	// Histogram is a lock-free log₂-bucketed histogram.
	Histogram = metrics.Histogram
	// HistogramSnapshot is a mergeable, quantile-queryable copy.
	HistogramSnapshot = metrics.HistogramSnapshot
	// Counters is an aggregated counter snapshot.
	Counters = metrics.Counters
	// Sampler emits per-interval counter deltas.
	Sampler = metrics.Sampler
	// Interval is one time-series sample.
	Interval = metrics.Interval
	// Report is the machine-readable account of one instrumented run.
	Report = metrics.Report
	// HistStat summarizes one histogram (count/mean/p50/p90/p99/max).
	HistStat = metrics.HistStat
	// LatencyStat is a HistStat labelled by class and completion path.
	LatencyStat = metrics.LatencyStat
	// TxStat is a HistStat of transaction durations for one outcome.
	TxStat = metrics.TxStat
)

// Constructors and helpers.
var (
	// New builds a Recorder (errors on non-positive Shards).
	New = metrics.New
	// MustNew is New for statically correct configurations.
	MustNew = metrics.MustNew
	// NewSampler builds a sampler over a recorder.
	NewSampler = metrics.NewSampler
	// BuildReport assembles a Report from a recorder and sampler.
	BuildReport = metrics.BuildReport
)

// NumBuckets is the number of log₂ histogram buckets.
const NumBuckets = metrics.NumBuckets
