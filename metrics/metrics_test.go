package metrics_test

import (
	"encoding/json"
	"strings"
	"testing"

	"hcf"
	"hcf/metrics"
)

type incOp struct{ addr hcf.Addr }

func (o incOp) Apply(ctx hcf.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o incOp) Class() int { return 0 }

// TestPublicAPIEndToEnd follows the package-doc recipe: instrument a
// framework through the public facade, run a workload, sample, and export.
func TestPublicAPIEndToEnd(t *testing.T) {
	const threads, perThread = 4, 50
	env := hcf.NewDetEnv(threads)
	fw, err := hcf.New(env, hcf.Config{
		Policies: []hcf.Policy{{
			TryPrivateTrials:   2,
			TryVisibleTrials:   3,
			TryCombiningTrials: 5,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.MustNew(metrics.Config{
		Shards:   threads + 1,
		Classes:  []string{"inc"},
		Paths:    fw.CompletionPaths(),
		TimeUnit: "cycles",
	})
	fw.SetRecorder(rec)
	sampler := metrics.NewSampler(rec, 2000)

	counter := env.Alloc(1)
	var end int64
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < perThread; i++ {
			fw.Execute(th, incOp{addr: counter})
			if th.ID() == 0 {
				sampler.MaybeSample(th.Now())
			}
		}
		if now := th.Now(); now > end {
			end = now
		}
	})
	sampler.Flush(end)

	report := metrics.BuildReport(rec, sampler, "facade-test", fw.Name(), threads)
	if report.Totals.Ops != threads*perThread {
		t.Fatalf("recorded %d ops, want %d", report.Totals.Ops, threads*perThread)
	}
	if len(report.Intervals) == 0 || len(report.ClassLatency) != 1 {
		t.Fatalf("report shape: %d intervals, %d classes",
			len(report.Intervals), len(report.ClassLatency))
	}

	out, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back metrics.Report
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if !strings.Contains(report.Prometheus(), `scenario="facade-test"`) {
		t.Error("Prometheus export missing scenario label")
	}
	if !strings.Contains(report.CSV(), "class,path,count,mean,p50,p90,p99,p999,max") {
		t.Error("CSV export missing latency header")
	}
}
