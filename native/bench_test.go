package native_test

// Wall-clock benchmarks: the native HCF map against the three stdlib
// baselines everyone reaches for first, across goroutine counts and
// read/write mixes, plus the priority queue against a mutex-guarded
// heap. Parallelism ladders use b.SetParallelism so oversubscribed
// points exist even on small boxes; run e.g.
//
//	go test -bench 'Map/' -benchtime 200ms ./native/
//
// The checked-in sweep (bench/BENCH_native.json, produced by
// `hcfbench -fig native`) covers the same grid with fixed-duration
// windows; these benchmarks are the interactive/profiling entry point.

import (
	"math/rand/v2"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"

	"hcf/native"
)

const (
	benchKeyspace = 1 << 14
	benchPrefill  = benchKeyspace / 2
)

// mapEngine abstracts one map implementation for the benchmark grid.
type mapEngine interface {
	get(k uint64) (uint64, bool)
	put(k, v uint64)
	del(k uint64)
}

type nativeMapEngine struct{ h *native.MapHandle }

func (e nativeMapEngine) get(k uint64) (uint64, bool) { return e.h.Get(k) }
func (e nativeMapEngine) put(k, v uint64)             { e.h.Put(k, v) }
func (e nativeMapEngine) del(k uint64)                { e.h.Delete(k) }

type mutexMapEngine struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

func (e *mutexMapEngine) get(k uint64) (uint64, bool) {
	e.mu.Lock()
	v, ok := e.m[k]
	e.mu.Unlock()
	return v, ok
}
func (e *mutexMapEngine) put(k, v uint64) { e.mu.Lock(); e.m[k] = v; e.mu.Unlock() }
func (e *mutexMapEngine) del(k uint64)    { e.mu.Lock(); delete(e.m, k); e.mu.Unlock() }

type rwMapEngine struct {
	mu sync.RWMutex
	m  map[uint64]uint64
}

func (e *rwMapEngine) get(k uint64) (uint64, bool) {
	e.mu.RLock()
	v, ok := e.m[k]
	e.mu.RUnlock()
	return v, ok
}
func (e *rwMapEngine) put(k, v uint64) { e.mu.Lock(); e.m[k] = v; e.mu.Unlock() }
func (e *rwMapEngine) del(k uint64)    { e.mu.Lock(); delete(e.m, k); e.mu.Unlock() }

type syncMapEngine struct{ m *sync.Map }

func (e syncMapEngine) get(k uint64) (uint64, bool) {
	v, ok := e.m.Load(k)
	if !ok {
		return 0, false
	}
	return v.(uint64), true
}
func (e syncMapEngine) put(k, v uint64) { e.m.Store(k, v) }
func (e syncMapEngine) del(k uint64)    { e.m.Delete(k) }

// runMapMix drives one engine with readPct% gets; writes alternate
// put/delete so the table stays near its prefill size.
func runMapMix(pb *testing.PB, eng mapEngine, seed uint64, readPct int) {
	rng := rand.New(rand.NewPCG(seed, 0xB0B))
	for pb.Next() {
		k := rng.Uint64N(benchKeyspace)
		r := rng.IntN(100)
		switch {
		case r < readPct:
			eng.get(k)
		case r&1 == 0:
			eng.put(k, k+1)
		default:
			eng.del(k)
		}
	}
}

func benchMap(b *testing.B, readPct int, build func(b *testing.B) func() mapEngine) {
	for _, par := range parallelismLadder() {
		b.Run(parName(par), func(b *testing.B) {
			mk := build(b)
			b.SetParallelism(par)
			var seed atomicSeed
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				eng := mk()
				runMapMix(pb, eng, seed.next(), readPct)
				if r, ok := eng.(interface{ release() }); ok {
					r.release()
				}
			})
		})
	}
}

// parallelismLadder yields SetParallelism factors so the goroutine count
// (factor * GOMAXPROCS) walks from GOMAXPROCS up through at least 2x
// oversubscription, hitting >=8 goroutines even on a single-CPU box.
func parallelismLadder() []int {
	p := runtime.GOMAXPROCS(0)
	seen := map[int]bool{}
	var out []int
	for _, g := range []int{1, 2, 4, 8, 16, p, 2 * p} {
		if g < p {
			continue
		}
		f := (g + p - 1) / p
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Ints(out)
	return out
}

func parName(par int) string {
	return "g" + strconv.Itoa(par*runtime.GOMAXPROCS(0))
}

type atomicSeed struct {
	mu sync.Mutex
	n  uint64
}

func (s *atomicSeed) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

func (e nativeMapEngine) release() { e.h.Release() }

func newNativeMapBuilder(b *testing.B) func() mapEngine {
	m, err := native.NewMap(2 * benchKeyspace)
	if err != nil {
		b.Fatal(err)
	}
	h := m.Handle()
	for k := uint64(0); k < benchPrefill; k++ {
		h.Put(k*2, k)
	}
	h.Release()
	return func() mapEngine { return nativeMapEngine{h: m.Handle()} }
}

func newMutexMapBuilder(*testing.B) func() mapEngine {
	e := &mutexMapEngine{m: make(map[uint64]uint64, benchKeyspace)}
	for k := uint64(0); k < benchPrefill; k++ {
		e.m[k*2] = k
	}
	return func() mapEngine { return e }
}

func newRWMapBuilder(*testing.B) func() mapEngine {
	e := &rwMapEngine{m: make(map[uint64]uint64, benchKeyspace)}
	for k := uint64(0); k < benchPrefill; k++ {
		e.m[k*2] = k
	}
	return func() mapEngine { return e }
}

func newSyncMapBuilder(*testing.B) func() mapEngine {
	e := syncMapEngine{m: &sync.Map{}}
	for k := uint64(0); k < benchPrefill; k++ {
		e.m.Store(k*2, k)
	}
	return func() mapEngine { return e }
}

func BenchmarkMapHCFNativeRead90(b *testing.B)  { benchMap(b, 90, newNativeMapBuilder) }
func BenchmarkMapMutexRead90(b *testing.B)      { benchMap(b, 90, newMutexMapBuilder) }
func BenchmarkMapRWMutexRead90(b *testing.B)    { benchMap(b, 90, newRWMapBuilder) }
func BenchmarkMapSyncMapRead90(b *testing.B)    { benchMap(b, 90, newSyncMapBuilder) }
func BenchmarkMapHCFNativeMixed50(b *testing.B) { benchMap(b, 50, newNativeMapBuilder) }
func BenchmarkMapMutexMixed50(b *testing.B)     { benchMap(b, 50, newMutexMapBuilder) }
func BenchmarkMapRWMutexMixed50(b *testing.B)   { benchMap(b, 50, newRWMapBuilder) }
func BenchmarkMapSyncMapMixed50(b *testing.B)   { benchMap(b, 50, newSyncMapBuilder) }

// Priority queue: native HCF vs a mutex-guarded plain binary heap.

type plainHeap struct {
	mu sync.Mutex
	h  []uint64
}

func (p *plainHeap) insert(k uint64) {
	p.mu.Lock()
	p.h = append(p.h, k)
	i := len(p.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if p.h[parent] <= p.h[i] {
			break
		}
		p.h[parent], p.h[i] = p.h[i], p.h[parent]
		i = parent
	}
	p.mu.Unlock()
}

func (p *plainHeap) extractMin() (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.h) == 0 {
		return 0, false
	}
	min := p.h[0]
	last := len(p.h) - 1
	p.h[0] = p.h[last]
	p.h = p.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(p.h) {
			break
		}
		c := l
		if r < len(p.h) && p.h[r] < p.h[l] {
			c = r
		}
		if p.h[i] <= p.h[c] {
			break
		}
		p.h[i], p.h[c] = p.h[c], p.h[i]
		i = c
	}
	return min, true
}

func BenchmarkPQueueHCFNative(b *testing.B) {
	for _, par := range parallelismLadder() {
		b.Run(parName(par), func(b *testing.B) {
			p, err := native.NewPQueue(1 << 20)
			if err != nil {
				b.Fatal(err)
			}
			h := p.Handle()
			for k := uint64(0); k < 4096; k++ {
				h.Insert(k)
			}
			h.Release()
			b.SetParallelism(par)
			var seed atomicSeed
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := p.Handle()
				defer h.Release()
				rng := rand.New(rand.NewPCG(seed.next(), 0xCAFE))
				for pb.Next() {
					if rng.IntN(2) == 0 {
						h.Insert(rng.Uint64N(1 << 20))
					} else {
						h.ExtractMin()
					}
				}
			})
		})
	}
}

func BenchmarkPQueueMutexHeap(b *testing.B) {
	for _, par := range parallelismLadder() {
		b.Run(parName(par), func(b *testing.B) {
			p := &plainHeap{}
			for k := uint64(0); k < 4096; k++ {
				p.insert(k)
			}
			b.SetParallelism(par)
			var seed atomicSeed
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewPCG(seed.next(), 0xCAFE))
				for pb.Next() {
					if rng.IntN(2) == 0 {
						p.insert(rng.Uint64N(1 << 20))
					} else {
						p.extractMin()
					}
				}
			})
		})
	}
}
