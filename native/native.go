// Package native is the production wall-clock backend of the HCF
// library: the same speculation-then-combining pipeline the simulated
// engines run (see the hcf package), re-targeted at direct Go atomics.
//
// A Framework guards one data structure with a single seqlock word.
// Read-only operation classes speculate with validated optimistic reads;
// update classes speculate with a budgeted CAS-acquire of the same word;
// both fall back to flat combining through cache-padded publication
// slots, where one thread batches every announced operation under the
// lock. Per-class policies carry the same knobs as the simulated
// framework — TryPrivate budget, MaxBatch, ShouldHelp, RunMulti — so
// configurations transfer between the two backends.
//
// # Quick start
//
//	m, _ := native.NewMap(1 << 15)
//	var wg sync.WaitGroup
//	for g := 0; g < runtime.NumCPU(); g++ {
//		wg.Add(1)
//		go func() {
//			defer wg.Done()
//			h := m.Handle() // one per goroutine
//			defer h.Release()
//			h.Put(42, 7)
//			v, ok := h.Get(42)
//			...
//		}()
//	}
//	wg.Wait()
//
// Custom data structures implement their sequential code over atomic
// cells and wire it on with Policies; see internal/native/hashtable and
// internal/native/pqueue for the two shipped examples, and
// docs/PERFORMANCE.md ("Native backend") for the memory-model argument
// and wall-clock numbers against sync.Mutex, sync.RWMutex and sync.Map.
package native

import (
	"runtime"

	inative "hcf/internal/native"
	ihash "hcf/internal/native/hashtable"
	ipq "hcf/internal/native/pqueue"
)

// Core types, aliased from the internal implementation.
type (
	// Framework is the native HCF engine.
	Framework = inative.Framework
	// Handle is a registered participant (one publication slot); acquire
	// one per goroutine.
	Handle = inative.Handle
	// Op is one data-structure operation (class + operand words).
	Op = inative.Op
	// Policy configures one operation class.
	Policy = inative.Policy
	// Config configures a Framework.
	Config = inative.Config
	// Metrics aggregates framework activity counters.
	Metrics = inative.Metrics
	// ApplyFunc is an operation's sequential code.
	ApplyFunc = inative.ApplyFunc
	// CombineFunc combines a batch of claimed operations.
	CombineFunc = inative.CombineFunc
	// ShouldHelpFunc selects which announced operations a combiner adopts.
	ShouldHelpFunc = inative.ShouldHelpFunc
	// WitnessFunc observes applications for linearizability checking.
	WitnessFunc = inative.WitnessFunc
)

// New builds a native framework.
func New(cfg Config) (*Framework, error) { return inative.New(cfg) }

// Result packing helpers.
var (
	// Pack encodes (63-bit value, ok) into a result word.
	Pack = inative.Pack
	// Unpack decodes a result word.
	Unpack = inative.Unpack
	// PackBool encodes a bare boolean result.
	PackBool = inative.PackBool
	// UnpackBool decodes a bare boolean result.
	UnpackBool = inative.UnpackBool
)

// DefaultTryPrivate is the speculation budget the ready-made structures
// use: enough attempts to ride out a short critical section before
// falling back to combining.
const DefaultTryPrivate = 8

// Map is a ready-made concurrent uint64->uint64 map: an open-addressing
// table (internal/native/hashtable) wired onto a Framework. Acquire a
// MapHandle per goroutine.
type Map struct {
	fw *Framework
	t  *ihash.Table
}

// wrapperHandles is the handle capacity for the ready-made wrappers:
// roomy enough for heavily oversubscribed goroutine ladders (slots are
// two cache lines each, so generosity is cheap).
func wrapperHandles() int {
	if n := 8 * runtime.GOMAXPROCS(0); n > 64 {
		return n
	}
	return 64
}

// NewMap builds a map with at least capacity slots (fixed; size it to
// roughly twice the expected live key count). Keys must be below
// hashtable.MaxKey.
func NewMap(capacity int) (*Map, error) {
	t := ihash.New(capacity)
	fw, err := inative.New(Config{Policies: t.Policies(DefaultTryPrivate, 0), MaxHandles: wrapperHandles()})
	if err != nil {
		return nil, err
	}
	return &Map{fw: fw, t: t}, nil
}

// Framework exposes the underlying engine (budgets, metrics, witness).
func (m *Map) Framework() *Framework { return m.fw }

// Len returns the number of live keys; call only while quiescent.
func (m *Map) Len() int { return m.t.Len() }

// Handle registers a per-goroutine participant. It panics when
// Config.MaxHandles handles are already live.
func (m *Map) Handle() *MapHandle { return &MapHandle{h: m.fw.MustHandle()} }

// MapHandle is a per-goroutine handle on a Map. Not safe for concurrent
// use; Release it when the goroutine is done.
type MapHandle struct{ h *Handle }

// Get returns the value stored under k.
func (mh *MapHandle) Get(k uint64) (uint64, bool) {
	return Unpack(mh.h.Execute(ihash.GetOp(k)))
}

// Put stores v under k, returning the previous value if one was replaced.
func (mh *MapHandle) Put(k, v uint64) (prev uint64, replaced bool) {
	return Unpack(mh.h.Execute(ihash.PutOp(k, v)))
}

// Delete removes k, reporting whether it was present.
func (mh *MapHandle) Delete(k uint64) bool {
	return UnpackBool(mh.h.Execute(ihash.DeleteOp(k)))
}

// Release returns the handle's slot.
func (mh *MapHandle) Release() { mh.h.Release() }

// PQueue is a ready-made concurrent priority queue: a binary min-heap
// (internal/native/pqueue) wired onto a Framework.
type PQueue struct {
	fw *Framework
	q  *ipq.Queue
}

// NewPQueue builds a queue holding at most capacity keys.
func NewPQueue(capacity int) (*PQueue, error) {
	q := ipq.New(capacity)
	fw, err := inative.New(Config{Policies: q.Policies(DefaultTryPrivate, 0), MaxHandles: wrapperHandles()})
	if err != nil {
		return nil, err
	}
	return &PQueue{fw: fw, q: q}, nil
}

// Framework exposes the underlying engine.
func (p *PQueue) Framework() *Framework { return p.fw }

// Len returns the number of queued keys; call only while quiescent.
func (p *PQueue) Len() int { return p.q.Len() }

// Handle registers a per-goroutine participant.
func (p *PQueue) Handle() *PQueueHandle { return &PQueueHandle{h: p.fw.MustHandle()} }

// PQueueHandle is a per-goroutine handle on a PQueue.
type PQueueHandle struct{ h *Handle }

// Insert pushes k.
func (ph *PQueueHandle) Insert(k uint64) { ph.h.Execute(ipq.InsertOp(k)) }

// ExtractMin pops the smallest key.
func (ph *PQueueHandle) ExtractMin() (uint64, bool) {
	return Unpack(ph.h.Execute(ipq.ExtractMinOp()))
}

// PeekMin reads the smallest key without removing it.
func (ph *PQueueHandle) PeekMin() (uint64, bool) {
	return Unpack(ph.h.Execute(ipq.PeekMinOp()))
}

// Release returns the handle's slot.
func (ph *PQueueHandle) Release() { ph.h.Release() }
