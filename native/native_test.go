package native_test

import (
	"sync"
	"testing"

	"hcf/native"
)

func TestMapBasics(t *testing.T) {
	m, err := native.NewMap(64)
	if err != nil {
		t.Fatal(err)
	}
	h := m.Handle()
	defer h.Release()
	if _, ok := h.Get(1); ok {
		t.Fatal("empty map reported a key")
	}
	if _, replaced := h.Put(1, 10); replaced {
		t.Fatal("first Put reported replacement")
	}
	if prev, replaced := h.Put(1, 20); !replaced || prev != 10 {
		t.Fatalf("Put replace = (%d,%v), want (10,true)", prev, replaced)
	}
	if v, ok := h.Get(1); !ok || v != 20 {
		t.Fatalf("Get = (%d,%v), want (20,true)", v, ok)
	}
	if !h.Delete(1) || h.Delete(1) {
		t.Fatal("Delete semantics wrong")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
	if m.Framework() == nil {
		t.Fatal("Framework accessor nil")
	}
}

func TestPQueueBasics(t *testing.T) {
	p, err := native.NewPQueue(64)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handle()
	defer h.Release()
	for _, k := range []uint64{5, 1, 9, 3} {
		h.Insert(k)
	}
	if v, ok := h.PeekMin(); !ok || v != 1 {
		t.Fatalf("PeekMin = (%d,%v), want (1,true)", v, ok)
	}
	for _, want := range []uint64{1, 3, 5, 9} {
		if v, ok := h.ExtractMin(); !ok || v != want {
			t.Fatalf("ExtractMin = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := h.ExtractMin(); ok {
		t.Fatal("empty queue reported a key")
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d, want 0", p.Len())
	}
}

func TestMapConcurrentDisjointKeys(t *testing.T) {
	m, err := native.NewMap(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, keysPer = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := m.Handle()
			defer h.Release()
			base := uint64(g) * keysPer
			for k := uint64(0); k < keysPer; k++ {
				h.Put(base+k, base+k+1)
			}
			for k := uint64(0); k < keysPer; k++ {
				if v, ok := h.Get(base + k); !ok || v != base+k+1 {
					t.Errorf("g%d: Get(%d) = (%d,%v)", g, base+k, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != goroutines*keysPer {
		t.Fatalf("Len = %d, want %d", m.Len(), goroutines*keysPer)
	}
}

func TestCustomFramework(t *testing.T) {
	// The facade exposes enough to wire a custom structure: a register
	// holding one value, swap returns the old one.
	var cell struct{ v uint64 }
	fw, err := native.New(native.Config{Policies: []native.Policy{{
		Name: "Swap", TryPrivate: native.DefaultTryPrivate,
		Run: func(op native.Op) uint64 { old := cell.v; cell.v = op.A; return old },
	}}})
	if err != nil {
		t.Fatal(err)
	}
	h := fw.MustHandle()
	defer h.Release()
	if old := h.Execute(native.Op{Class: 0, A: 7}); old != 0 {
		t.Fatalf("first swap returned %d", old)
	}
	if old := h.Execute(native.Op{Class: 0, A: 9}); old != 7 {
		t.Fatalf("second swap returned %d", old)
	}
}
