package serve

import (
	"hcf/internal/harness"
	"hcf/internal/metrics"
)

// HotLineLimit is how many hot lines each driver tick publishes.
const HotLineLimit = 16

// Server implements harness.OpenLoopObserver: pass it as
// OpenLoopConfig.Observer and every endpoint goes live for the duration of
// the run, fed by structures that are safe to read from host goroutines
// while the simulation is in flight.
var _ harness.OpenLoopObserver = (*Server)(nil)

// ObserveOpenLoop wires all providers to the run's live structures. It is
// called by the harness before the run starts.
func (s *Server) ObserveOpenLoop(v harness.OpenLoopView) {
	s.SetMeta(v.Scenario, v.Engine, v.Threads)
	s.SetBacklog(v.Backlog)
	service, sampler := v.Service, v.Sampler
	sloTracker := v.SLO
	col := v.Trace
	scenario, engine, threads := v.Scenario, v.Engine, v.Threads

	s.SetReport(func() *metrics.Report {
		rep := metrics.BuildReport(service, sampler, scenario, engine, threads)
		if sloTracker != nil {
			snap := sloTracker.Snapshot()
			rep.SLO = &snap
		}
		if col != nil {
			rep.Trace = &metrics.TraceHealth{
				Starts:   col.Starts(),
				Retained: uint64(col.Retained()),
				Dropped:  col.Dropped(),
			}
		}
		return &rep
	})
	if sloTracker != nil {
		s.SetSLO(func() *metrics.SLOSnapshot {
			snap := sloTracker.Snapshot()
			return &snap
		})
	}
	s.SetShards(func() []metrics.GroupCounters {
		return service.Counters().ByGroup
	})
	sojourn := v.Sojourn
	s.SetSojourn(func() []ClassLatency {
		classes := sojourn.Classes()
		rows := make([]ClassLatency, 0, len(classes))
		for c, class := range classes {
			if snap := sojourn.ClassHistogram(c); snap.Count > 0 {
				rows = append(rows, classLatencyOf(class, snap))
			}
		}
		return rows
	})
	if col != nil {
		s.SetTraceHealth(func() *metrics.TraceHealth {
			return &metrics.TraceHealth{
				Starts:   col.Starts(),
				Retained: uint64(col.Retained()),
				Dropped:  col.Dropped(),
			}
		})
	}
	s.mu.Lock()
	s.traceCol = col
	s.mu.Unlock()
}

// OpenLoopTick runs on the simulator's driver thread at sampler cadence,
// while every other virtual thread is parked — the only mid-run context
// where aggregating trace events is safe. It publishes the hot-line
// snapshot and advances the virtual-now gauge. It charges no simulated
// cycles, so an attached server never changes results.
func (s *Server) OpenLoopTick(now int64) {
	s.lastTick.Store(now)
	s.mu.RLock()
	col := s.traceCol
	s.mu.RUnlock()
	if col != nil {
		s.PublishHotLines(col.HotLines(HotLineLimit))
	}
}
