// Package serve is the live introspection server: a small HTTP endpoint
// set over the metrics, SLO, trace and tuner-journal subsystems, designed
// so a running experiment can be inspected from outside the process with
// ZERO perturbation of the simulated run.
//
// Everything the handlers read is either host-side (atomic recorder
// counters, lock-protected sampler copies, copy-on-write journals) or a
// snapshot published from the simulator's driver thread at sampler cadence
// (trace hot lines, which are unsafe to aggregate while spans are being
// emitted). No handler charges simulated cycles, so results are
// bit-identical with the server enabled or disabled — a property the tests
// enforce.
//
// Typical uses:
//
//	srv := serve.New()
//	addr, _ := srv.Start("127.0.0.1:0")   // live endpoints at http://addr/debug
//	// open-loop run: srv implements harness.OpenLoopObserver
//	harness.RunPointOpenLoop(sc, "HCF", 36, cfg, harness.OpenLoopConfig{
//		Rate: 20000, Observer: srv,
//	})
//
// or post-run, with explicit providers:
//
//	srv.SetReport(func() *metrics.Report { return &rep })
//	srv.SetJournal(tuner.Journal())
//
// Endpoints (all JSON unless ?format says otherwise):
//
//	/debug           index of everything below
//	/debug/metrics   full report (?format=prom | text | json)
//	/debug/intervals per-interval time series with backlog gauges
//	/debug/slo       SLO objectives, burn rates, verdicts (?format=prom | text)
//	/debug/shards    per-shard ops/commits/aborts/combining breakdown;
//	                 with SetTopology (elastic engines) the payload is
//	                 {"topology": ..., "counters": [...]} adding ring
//	                 epoch, slot ownership and split/merge totals
//	/debug/sojourn   per-class sojourn latency through p9999
//	/debug/hotlines  trace conflict attribution (published at tick cadence)
//	/debug/journal   autotuner decision journal (?n=K tails the last K)
//	/debug/vars      cheap scalar gauges: now, backlog, trace health
//	/debug/pprof/    the standard Go profiler endpoints
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"hcf/internal/adaptive"
	"hcf/internal/metrics"
	"hcf/internal/shard"
	"hcf/internal/trace"
)

// ClassLatency is one row of the /debug/sojourn endpoint: a per-class
// latency distribution carried through the deep tail.
type ClassLatency struct {
	Class string  `json:"class"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
	P9999 uint64  `json:"p9999"`
	Max   uint64  `json:"max"`
}

// classLatencyOf summarizes one histogram snapshot.
func classLatencyOf(class string, s metrics.HistogramSnapshot) ClassLatency {
	return ClassLatency{
		Class: class,
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		P9999: s.Quantile(0.9999),
		Max:   s.Max,
	}
}

// Vars is the /debug/vars payload: cheap scalar gauges about the run.
type Vars struct {
	Scenario string `json:"scenario,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	// Now is the virtual time of the last driver tick.
	Now int64 `json:"now"`
	// Backlog is arrived-but-uncompleted operations as of Now.
	Backlog int64 `json:"backlog"`
	// Trace is flight-recorder health, when tracing is enabled.
	Trace *metrics.TraceHealth `json:"trace,omitempty"`
}

// Server serves the introspection endpoints. The zero value is not usable;
// call New. Providers are installed either explicitly (SetReport etc.) or
// by attaching the server to an open-loop run as its observer.
type Server struct {
	mu       sync.RWMutex
	scenario string
	engine   string
	threads  int

	report   func() *metrics.Report
	slo      func() *metrics.SLOSnapshot
	shards   func() []metrics.GroupCounters
	topology func() *shard.Topology
	sojourn  func() []ClassLatency
	health   func() *metrics.TraceHealth
	backlog  func() int64
	journal  *adaptive.Journal

	hotlines atomic.Pointer[[]trace.HotLine]
	traceCol *trace.Collector
	lastTick atomic.Int64

	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener
}

// New creates a server with no providers installed; endpoints without a
// provider answer 404 until one is set.
func New() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.mux.HandleFunc("/debug", s.handleIndex)
	s.mux.HandleFunc("/debug/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/intervals", s.handleIntervals)
	s.mux.HandleFunc("/debug/slo", s.handleSLO)
	s.mux.HandleFunc("/debug/shards", s.handleShards)
	s.mux.HandleFunc("/debug/sojourn", s.handleSojourn)
	s.mux.HandleFunc("/debug/hotlines", s.handleHotLines)
	s.mux.HandleFunc("/debug/journal", s.handleJournal)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the endpoint mux (for tests or embedding into an
// existing server).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr ("host:port"; port 0 picks a free one) and serves
// in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.http = &http.Server{Handler: s.mux}
	srv := s.http
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.http, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// SetMeta labels the run the endpoints describe.
func (s *Server) SetMeta(scenario, engine string, threads int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scenario, s.engine, s.threads = scenario, engine, threads
}

// SetReport installs the /debug/metrics and /debug/intervals provider. The
// function is called per request and must be safe for concurrent use.
func (s *Server) SetReport(fn func() *metrics.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.report = fn
}

// SetSLO installs the /debug/slo provider.
func (s *Server) SetSLO(fn func() *metrics.SLOSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slo = fn
}

// SetShards installs the /debug/shards provider.
func (s *Server) SetShards(fn func() []metrics.GroupCounters) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards = fn
}

// SetTopology installs the elastic-topology provider. When set,
// /debug/shards answers with an object {"topology": ..., "counters":
// [...]} — ring epoch, active/provisioned shards, slot ownership,
// split/merge/migration totals alongside the per-shard counters —
// instead of the bare counters array a static sharded engine gets.
func (s *Server) SetTopology(fn func() *shard.Topology) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.topology = fn
}

// SetSojourn installs the /debug/sojourn provider.
func (s *Server) SetSojourn(fn func() []ClassLatency) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sojourn = fn
}

// SetTraceHealth installs the trace-health gauge used by /debug/vars.
func (s *Server) SetTraceHealth(fn func() *metrics.TraceHealth) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health = fn
}

// SetBacklog installs the live backlog gauge used by /debug/vars.
func (s *Server) SetBacklog(fn func() int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.backlog = fn
}

// SetJournal installs the autotuner decision journal for /debug/journal.
// The journal is copy-on-write, so it may still be appended to.
func (s *Server) SetJournal(j *adaptive.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// PublishHotLines atomically replaces the /debug/hotlines snapshot. Call
// it only from a context where aggregating trace events is safe — after a
// run, or from the open-loop driver tick.
func (s *Server) PublishHotLines(hl []trace.HotLine) {
	s.hotlines.Store(&hl)
}

// --- handlers ---

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck
	w.Write([]byte{'\n'})
}

func writePlain(w http.ResponseWriter, text string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{
		"/debug/metrics":   "full metrics report (?format=json|prom|text)",
		"/debug/intervals": "per-interval time series with backlog gauges",
		"/debug/slo":       "SLO objectives, burn rates, verdicts (?format=json|prom|text)",
		"/debug/shards":    "per-shard counters; +ring topology for elastic engines",
		"/debug/sojourn":   "per-class sojourn latency through p9999",
		"/debug/hotlines":  "trace conflict attribution by cache line",
		"/debug/journal":   "autotuner decision journal (?n=K for the last K)",
		"/debug/vars":      "scalar gauges: virtual now, backlog, trace health",
		"/debug/pprof/":    "Go profiler endpoints",
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.report
	s.mu.RUnlock()
	if fn == nil {
		http.Error(w, "no metrics provider configured", http.StatusNotFound)
		return
	}
	rep := fn()
	if rep == nil {
		http.Error(w, "metrics provider returned nothing", http.StatusNotFound)
		return
	}
	switch r.URL.Query().Get("format") {
	case "prom":
		writePlain(w, rep.Prometheus())
	case "text":
		writePlain(w, rep.Text())
	default:
		writeJSON(w, rep)
	}
}

func (s *Server) handleIntervals(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.report
	s.mu.RUnlock()
	if fn == nil {
		http.Error(w, "no metrics provider configured", http.StatusNotFound)
		return
	}
	rep := fn()
	if rep == nil {
		http.Error(w, "metrics provider returned nothing", http.StatusNotFound)
		return
	}
	writeJSON(w, rep.Intervals)
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.slo
	s.mu.RUnlock()
	if fn == nil {
		http.Error(w, "no SLO provider configured", http.StatusNotFound)
		return
	}
	snap := fn()
	if snap == nil {
		http.Error(w, "SLO provider returned nothing", http.StatusNotFound)
		return
	}
	switch r.URL.Query().Get("format") {
	case "prom":
		writePlain(w, snap.Prometheus("hcf"))
	case "text":
		writePlain(w, snap.Text())
	default:
		writeJSON(w, snap)
	}
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.shards
	topo := s.topology
	s.mu.RUnlock()
	if fn == nil && topo == nil {
		http.Error(w, "no shard provider configured", http.StatusNotFound)
		return
	}
	var sh []metrics.GroupCounters
	if fn != nil {
		sh = fn()
	}
	if sh == nil {
		sh = []metrics.GroupCounters{}
	}
	// Static sharded engines keep the original bare-array shape; elastic
	// engines get the object shape with the live topology alongside.
	if topo == nil {
		writeJSON(w, sh)
		return
	}
	writeJSON(w, map[string]any{
		"topology": topo(),
		"counters": sh,
	})
}

func (s *Server) handleSojourn(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.sojourn
	s.mu.RUnlock()
	if fn == nil {
		http.Error(w, "no sojourn provider configured", http.StatusNotFound)
		return
	}
	rows := fn()
	if rows == nil {
		rows = []ClassLatency{}
	}
	writeJSON(w, rows)
}

func (s *Server) handleHotLines(w http.ResponseWriter, r *http.Request) {
	p := s.hotlines.Load()
	if p == nil {
		http.Error(w, "no hot-line snapshot published", http.StatusNotFound)
		return
	}
	hl := *p
	if hl == nil {
		hl = []trace.HotLine{}
	}
	writeJSON(w, hl)
}

func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	j := s.journal
	s.mu.RUnlock()
	if j == nil {
		http.Error(w, "no journal configured", http.StatusNotFound)
		return
	}
	ds := j.Decisions()
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		var n int
		if _, err := fmt.Sscanf(nStr, "%d", &n); err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if n < len(ds) {
			ds = ds[len(ds)-n:]
		}
	}
	if ds == nil {
		ds = []adaptive.Decision{}
	}
	writeJSON(w, ds)
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	v := Vars{Scenario: s.scenario, Engine: s.engine, Threads: s.threads}
	backlog, health := s.backlog, s.health
	s.mu.RUnlock()
	v.Now = s.lastTick.Load()
	if backlog != nil {
		v.Backlog = backlog()
	}
	if health != nil {
		v.Trace = health()
	}
	writeJSON(w, v)
}
