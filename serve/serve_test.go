package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hcf/internal/adaptive"
	"hcf/internal/harness"
	"hcf/internal/metrics"
	"hcf/internal/route"
	"hcf/internal/shard"
	"hcf/internal/trace"
)

// get fetches path from the test handler and returns (status, body).
func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw.Code, rw.Body.String()
}

func TestEndpointsUnconfigured(t *testing.T) {
	s := New()
	h := s.Handler()
	if code, body := get(t, h, "/debug"); code != 200 || !strings.Contains(body, "/debug/metrics") {
		t.Fatalf("index: code %d body %q", code, body)
	}
	for _, ep := range []string{
		"/debug/metrics", "/debug/intervals", "/debug/slo",
		"/debug/shards", "/debug/sojourn", "/debug/hotlines", "/debug/journal",
	} {
		if code, _ := get(t, h, ep); code != http.StatusNotFound {
			t.Errorf("%s without provider: code %d, want 404", ep, code)
		}
	}
	// vars always answers, with zero values.
	code, body := get(t, h, "/debug/vars")
	if code != 200 {
		t.Fatalf("vars: code %d", code)
	}
	var v Vars
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("vars JSON: %v", err)
	}
}

func TestEndpointsWithProviders(t *testing.T) {
	s := New()
	h := s.Handler()

	rec, err := metrics.New(metrics.Config{Shards: 2, Classes: []string{"a", "b"}, TimeUnit: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	rec.RecordOp(0, 0, 0, 100)
	rec.RecordOp(1, 1, 0, 300)
	sampler := metrics.NewSampler(rec, 50)
	sampler.Flush(100)
	s.SetMeta("scenario-x", "HCF", 2)
	s.SetReport(func() *metrics.Report {
		rep := metrics.BuildReport(rec, sampler, "scenario-x", "HCF", 2)
		return &rep
	})
	tr, err := metrics.NewSLOTracker(rec, metrics.SLOConfig{
		Objectives: []metrics.Objective{{Threshold: 1000, Target: 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Step(100)
	s.SetSLO(func() *metrics.SLOSnapshot {
		snap := tr.Snapshot()
		return &snap
	})
	s.SetShards(func() []metrics.GroupCounters {
		return []metrics.GroupCounters{{Group: "shard0", Ops: 7}}
	})
	s.SetSojourn(func() []ClassLatency {
		return []ClassLatency{classLatencyOf("a", rec.ClassHistogram(0))}
	})
	s.SetJournal(&adaptive.Journal{})
	s.PublishHotLines([]trace.HotLine{{Line: 42, Aborts: 3, TopWriter: 1, TopWriterAborts: 2}})
	s.SetBacklog(func() int64 { return 5 })
	s.SetTraceHealth(func() *metrics.TraceHealth {
		return &metrics.TraceHealth{Starts: 2, Retained: 2}
	})

	code, body := get(t, h, "/debug/metrics")
	if code != 200 {
		t.Fatalf("metrics: code %d", code)
	}
	var rep metrics.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if rep.Scenario != "scenario-x" || rep.Totals.Ops != 2 {
		t.Fatalf("metrics content: %+v", rep.Totals)
	}
	if code, body := get(t, h, "/debug/metrics?format=prom"); code != 200 ||
		!strings.Contains(body, "hcf_ops_total") || !strings.Contains(body, `quantile="0.999"`) {
		t.Fatalf("prom format: code %d body %.200q", code, body)
	}
	if code, body := get(t, h, "/debug/metrics?format=text"); code != 200 || !strings.Contains(body, "p999") {
		t.Fatalf("text format: code %d body %.200q", code, body)
	}

	code, body = get(t, h, "/debug/intervals")
	var ivs []metrics.Interval
	if err := json.Unmarshal([]byte(body), &ivs); err != nil || code != 200 || len(ivs) == 0 {
		t.Fatalf("intervals: code %d err %v n %d", code, err, len(ivs))
	}

	code, body = get(t, h, "/debug/slo")
	var snap metrics.SLOSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || code != 200 || len(snap.Objectives) != 1 {
		t.Fatalf("slo: code %d err %v", code, err)
	}
	if code, body := get(t, h, "/debug/slo?format=prom"); code != 200 || !strings.Contains(body, "hcf_slo_compliance") {
		t.Fatalf("slo prom: code %d body %.200q", code, body)
	}

	code, body = get(t, h, "/debug/shards")
	var groups []metrics.GroupCounters
	if err := json.Unmarshal([]byte(body), &groups); err != nil || code != 200 ||
		len(groups) != 1 || groups[0].Group != "shard0" {
		t.Fatalf("shards: code %d err %v body %q", code, err, body)
	}

	code, body = get(t, h, "/debug/sojourn")
	var rows []ClassLatency
	if err := json.Unmarshal([]byte(body), &rows); err != nil || code != 200 ||
		len(rows) != 1 || rows[0].Class != "a" || rows[0].Count != 1 {
		t.Fatalf("sojourn: code %d err %v body %q", code, err, body)
	}

	code, body = get(t, h, "/debug/hotlines")
	var hls []trace.HotLine
	if err := json.Unmarshal([]byte(body), &hls); err != nil || code != 200 ||
		len(hls) != 1 || hls[0].Line != 42 {
		t.Fatalf("hotlines: code %d err %v body %q", code, err, body)
	}

	code, body = get(t, h, "/debug/journal")
	if code != 200 || strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty journal: code %d body %q", code, body)
	}
	if code, _ := get(t, h, "/debug/journal?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad n: code %d", code)
	}
	if code, _ := get(t, h, "/debug/journal?n=2"); code != 200 {
		t.Fatalf("journal tail: code %d", code)
	}

	code, body = get(t, h, "/debug/vars")
	var v Vars
	if err := json.Unmarshal([]byte(body), &v); err != nil || code != 200 {
		t.Fatalf("vars: code %d err %v", code, err)
	}
	if v.Scenario != "scenario-x" || v.Backlog != 5 || v.Trace == nil || v.Trace.Starts != 2 {
		t.Fatalf("vars content: %+v", v)
	}
}

// tickProbe wraps the server observer and, on every driver tick, issues
// synchronous HTTP requests against the live server — guaranteeing the
// endpoints are exercised WHILE the simulated run is in flight, not just
// before or after. The requests block wall-clock time but charge no
// simulated cycles, so they must not change results.
type tickProbe struct {
	*Server
	base   string
	t      *testing.T
	midRun int
	bodies map[string]string
	mu     sync.Mutex
	eps    []string
}

func (p *tickProbe) OpenLoopTick(now int64) {
	p.Server.OpenLoopTick(now)
	eps := p.eps
	if eps == nil {
		eps = []string{
			"/debug/metrics", "/debug/intervals", "/debug/slo",
			"/debug/shards", "/debug/sojourn", "/debug/hotlines", "/debug/vars",
		}
	}
	for _, ep := range eps {
		resp, err := http.Get(p.base + ep)
		if err != nil {
			p.t.Errorf("mid-run GET %s: %v", ep, err)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			p.t.Errorf("mid-run GET %s: status %d body %q", ep, resp.StatusCode, body)
			continue
		}
		var js any
		if err := json.Unmarshal(body, &js); err != nil {
			p.t.Errorf("mid-run GET %s: invalid JSON: %v", ep, err)
			continue
		}
		p.mu.Lock()
		p.midRun++
		p.bodies[ep] = string(body)
		p.mu.Unlock()
	}
}

// TestOpenLoopBitIdentityWithServer is the acceptance gate for the live
// introspection server: an open-loop run with the server attached and its
// endpoints actively hammered mid-run produces BIT-IDENTICAL results to
// the same run with no server at all.
func TestOpenLoopBitIdentityWithServer(t *testing.T) {
	sc := harness.OpenLoopScenario()
	cfg := harness.Config{Horizon: 150_000, Seed: 1}
	ol := harness.OpenLoopConfig{Rate: 12_000, TraceLimit: 64}

	bare, bareRep, err := harness.RunPointOpenLoop(sc, "HCF", 8, cfg, ol)
	if err != nil {
		t.Fatal(err)
	}

	srv := New()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	probe := &tickProbe{Server: srv, base: "http://" + addr, t: t, bodies: map[string]string{}}

	// Concurrent host-side hammering for race coverage on top of the
	// deterministic tick probes.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + addr + "/debug/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}

	olServed := ol
	olServed.Observer = probe
	served, servedRep, err := harness.RunPointOpenLoop(sc, "HCF", 8, cfg, olServed)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if probe.midRun == 0 {
		t.Fatal("no successful mid-run endpoint responses — the server was not live during the run")
	}

	bareJSON, err := json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	servedJSON, err := json.Marshal(served)
	if err != nil {
		t.Fatal(err)
	}
	if string(bareJSON) != string(servedJSON) {
		t.Fatalf("server perturbation detected:\n--- bare ---\n%s\n--- served ---\n%s", bareJSON, servedJSON)
	}
	bareRepJSON, err := bareRep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	servedRepJSON, err := servedRep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(bareRepJSON) != string(servedRepJSON) {
		t.Fatal("full metrics reports differ between served and bare runs")
	}

	// The mid-run payloads are real live data, not empty shells.
	var v Vars
	if err := json.Unmarshal([]byte(probe.bodies["/debug/vars"]), &v); err != nil {
		t.Fatalf("mid-run vars: %v", err)
	}
	if v.Now == 0 || v.Engine != "HCF" {
		t.Fatalf("mid-run vars not live: %+v", v)
	}
	var rep metrics.Report
	if err := json.Unmarshal([]byte(probe.bodies["/debug/metrics"]), &rep); err != nil {
		t.Fatalf("mid-run metrics: %v", err)
	}
	if rep.Totals.Ops == 0 {
		t.Fatal("mid-run metrics snapshot has zero ops")
	}
	var rows []ClassLatency
	if err := json.Unmarshal([]byte(probe.bodies["/debug/sojourn"]), &rows); err != nil {
		t.Fatalf("mid-run sojourn: %v", err)
	}
	if len(rows) == 0 || rows[0].Count == 0 {
		t.Fatal("mid-run sojourn snapshot empty")
	}
}

// TestOpenLoopShardedEndpoints runs the sharded engine (which has no trace
// support but a grouped recorder) with the server attached: bit-identity
// must hold and the per-shard endpoint must carry live data mid-run.
func TestOpenLoopShardedEndpoints(t *testing.T) {
	sc := harness.OpenLoopScenario()
	cfg := harness.Config{Horizon: 150_000, Seed: 1}
	ol := harness.OpenLoopConfig{Rate: 12_000}

	bare, _, err := harness.RunPointOpenLoop(sc, harness.ShardedEngineName, 8, cfg, ol)
	if err != nil {
		t.Fatal(err)
	}
	srv := New()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	probe := &tickProbe{
		Server: srv, base: "http://" + addr, t: t, bodies: map[string]string{},
		eps: []string{"/debug/metrics", "/debug/shards", "/debug/vars"},
	}
	ol.Observer = probe
	served, _, err := harness.RunPointOpenLoop(sc, harness.ShardedEngineName, 8, cfg, ol)
	if err != nil {
		t.Fatal(err)
	}
	bareJSON, _ := json.Marshal(bare)
	servedJSON, _ := json.Marshal(served)
	if string(bareJSON) != string(servedJSON) {
		t.Fatalf("server perturbation on sharded run:\n%s\nvs\n%s", bareJSON, servedJSON)
	}
	var groups []metrics.GroupCounters
	if err := json.Unmarshal([]byte(probe.bodies["/debug/shards"]), &groups); err != nil {
		t.Fatalf("mid-run shards: %v", err)
	}
	if len(groups) < 2 {
		t.Fatalf("sharded run exposed %d shard groups, want >= 2", len(groups))
	}
	var ops uint64
	for _, g := range groups {
		ops += g.Ops
	}
	if ops == 0 {
		t.Fatal("per-shard counters all zero mid-run")
	}
	// hotlines stays unpublished without tracing.
	if code, _ := get(t, srv.Handler(), "/debug/hotlines"); code != http.StatusNotFound {
		t.Fatalf("hotlines without tracing: code %d, want 404", code)
	}
}

func TestServerStartClose(t *testing.T) {
	s := New()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr {
		t.Fatalf("Addr %q != bound %q", s.Addr(), addr)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug", addr))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("index over TCP: %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if s.Addr() != "" {
		t.Fatalf("Addr after close: %q", s.Addr())
	}
}

// TestShardsTopologyShape pins the two /debug/shards payload shapes:
// the bare counters array for static sharded engines, and the
// {"topology", "counters"} object once SetTopology is installed
// (elastic engines).
func TestShardsTopologyShape(t *testing.T) {
	s := New()
	h := s.Handler()
	s.SetShards(func() []metrics.GroupCounters {
		return []metrics.GroupCounters{{Group: "shard0", Ops: 7}}
	})

	code, body := get(t, h, "/debug/shards")
	if code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Fatalf("static shape: code %d body %q", code, body)
	}

	s.SetTopology(func() *shard.Topology {
		return &shard.Topology{
			Name:        "HCF-E",
			Provisioned: 8,
			Splits:      2,
			MovedKeys:   495,
			Ring:        route.Snapshot{Epoch: 2, Slots: 64, Active: 6},
		}
	})
	code, body = get(t, h, "/debug/shards")
	if code != 200 {
		t.Fatalf("elastic shape: code %d", code)
	}
	var obj struct {
		Topology *shard.Topology         `json:"topology"`
		Counters []metrics.GroupCounters `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &obj); err != nil {
		t.Fatalf("elastic shape not an object: %v body %q", err, body)
	}
	if obj.Topology == nil || obj.Topology.Ring.Epoch != 2 || obj.Topology.Splits != 2 {
		t.Fatalf("topology lost in transit: %+v", obj.Topology)
	}
	if len(obj.Counters) != 1 || obj.Counters[0].Group != "shard0" {
		t.Fatalf("counters lost in transit: %+v", obj.Counters)
	}

	// Topology alone (no counters provider) still answers with the
	// object shape rather than 404.
	s2 := New()
	s2.SetTopology(func() *shard.Topology { return &shard.Topology{Provisioned: 4} })
	code, body = get(t, s2.Handler(), "/debug/shards")
	if code != 200 || !strings.Contains(body, "\"topology\"") {
		t.Fatalf("topology-only: code %d body %q", code, body)
	}
}
