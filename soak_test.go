package hcf_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"hcf"
	"hcf/internal/harness"
	"hcf/internal/memsim"
	"hcf/verify"
)

// TestSoakEveryFigureScenario drives every registered experiment scenario
// under every engine for a short burst and validates invariants — the
// whole-repository integration smoke. Skipped under -short.
func TestSoakEveryFigureScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in short mode")
	}
	for _, fig := range harness.Figures() {
		for _, name := range fig.Engines {
			r, err := harness.RunPoint(fig.Scenario, name, 5, harness.Config{
				Horizon: 12_000,
				Seed:    99,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", fig.ID, name, err)
			}
			if r.Ops == 0 {
				t.Fatalf("%s/%s: no ops", fig.ID, name)
			}
			if r.InvariantViolation != "" {
				t.Fatalf("%s/%s: %s", fig.ID, name, r.InvariantViolation)
			}
		}
	}
}

// TestSoakWitnessedHCFUnderJitter runs a longer witnessed HCF burst across
// several fuzzed schedules through the public API. Skipped under -short.
func TestSoakWitnessedHCFUnderJitter(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in short mode")
	}
	const threads, perThread = 9, 120
	for seed := uint64(100); seed < 104; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cost := memsim.DefaultCostParams()
			cost.JitterPct = 35
			env := memsim.NewDet(memsim.DetConfig{Threads: threads, Cost: cost, Seed: seed})
			fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
				TryPrivateTrials:   2,
				TryVisibleTrials:   2,
				TryCombiningTrials: 4,
			}}})
			if err != nil {
				t.Fatal(err)
			}
			rec := &verify.Recorder{}
			fw.SetWitness(rec.Func())
			counter := env.Alloc(1)
			env.Run(func(th *hcf.Thread) {
				rng := rand.New(rand.NewPCG(seed, uint64(th.ID())))
				for i := 0; i < perThread; i++ {
					fw.Execute(th, soakIncOp{addr: counter})
					if rng.IntN(16) == 0 {
						th.Yield()
					}
				}
			})
			if err := verify.Check(rec, &soakCounterModel{}, threads*perThread, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

type soakIncOp struct{ addr hcf.Addr }

func (o soakIncOp) Apply(ctx hcf.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o soakIncOp) Class() int { return 0 }

type soakCounterModel struct{ v uint64 }

func (m *soakCounterModel) Apply(op hcf.Op) uint64 {
	m.v++
	return m.v - 1
}
