// Package tracing exposes the HCF lifecycle-trace collector for users of
// the hcf module: install a Collector on a framework to see where each
// operation went — per-phase speculative attempt outcomes with abort
// reasons, combiner selection sizes, self vs helped completions, and lock
// acquisitions.
//
//	col := &tracing.Collector{Limit: 100_000}
//	fw.SetTracer(col)
//	env.Run(...)
//	fmt.Print(col.Summary())
//
// See cmd/hcftrace for a ready-made command built on this package.
package tracing

import "hcf/internal/trace"

// Collector records and summarizes framework lifecycle events into
// lock-free per-thread buffers. Install with (*hcf.Framework).SetTracer
// (or any baseline engine's SetTracer). Set Limit to turn it into a
// bounded flight recorder: each thread keeps a ring of its Limit most
// recent events while the aggregate counters keep counting past it.
type Collector = trace.Collector

// HotLine is one entry of the conflict-attribution report: a cache line,
// its conflict-abort count, and the dominant writer thread.
type HotLine = trace.HotLine

// SummaryData is the machine-readable form of Collector.Summary.
type SummaryData = trace.SummaryData
