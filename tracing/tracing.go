// Package tracing exposes the HCF lifecycle-trace collector for users of
// the hcf module: install a Collector on a framework to see where each
// operation went — per-phase speculative attempt outcomes with abort
// reasons, combiner selection sizes, self vs helped completions, and lock
// acquisitions.
//
//	col := &tracing.Collector{Limit: 100_000}
//	fw.SetTracer(col)
//	env.Run(...)
//	fmt.Print(col.Summary())
//
// See cmd/hcftrace for a ready-made command built on this package.
package tracing

import "hcf/internal/trace"

// Collector records and summarizes framework lifecycle events. Install
// with (*hcf.Framework).SetTracer. Safe for concurrent use; set Limit to
// bound retained events (aggregate counters keep counting past it).
type Collector = trace.Collector
