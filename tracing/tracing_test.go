package tracing_test

import (
	"strings"
	"testing"

	"hcf"
	"hcf/tracing"
)

type incOp struct{ addr hcf.Addr }

func (o incOp) Apply(ctx hcf.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o incOp) Class() int { return 0 }

func TestPublicCollectorFlow(t *testing.T) {
	env := hcf.NewDetEnv(6)
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
		TryPrivateTrials:   2,
		TryVisibleTrials:   2,
		TryCombiningTrials: 3,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	col := &tracing.Collector{Limit: 500}
	fw.SetTracer(col)
	counter := env.Alloc(1)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < 30; i++ {
			fw.Execute(th, incOp{addr: counter})
		}
	})
	if col.Starts() != 180 {
		t.Fatalf("starts = %d, want 180", col.Starts())
	}
	sum := col.Summary()
	if !strings.Contains(sum, "operations started: 180") {
		t.Fatalf("summary:\n%s", sum)
	}
	if tl := col.FormatTimeline(3); strings.Count(tl, "\n") != 3 {
		t.Fatalf("timeline:\n%s", tl)
	}
	// Detaching the tracer must not break execution.
	fw.SetTracer(nil)
	env.Run(func(th *hcf.Thread) {
		fw.Execute(th, incOp{addr: counter})
	})
	if got := env.Boot().Load(counter); got != 186 {
		t.Fatalf("counter = %d", got)
	}
}
