package tracing_test

import (
	"strings"
	"testing"

	"hcf"
	"hcf/tracing"
)

type incOp struct{ addr hcf.Addr }

func (o incOp) Apply(ctx hcf.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o incOp) Class() int { return 0 }

func TestPublicCollectorFlow(t *testing.T) {
	env := hcf.NewDetEnv(6)
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
		TryPrivateTrials:   2,
		TryVisibleTrials:   2,
		TryCombiningTrials: 3,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	col := &tracing.Collector{Limit: 500}
	fw.SetTracer(col)
	counter := env.Alloc(1)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < 30; i++ {
			fw.Execute(th, incOp{addr: counter})
		}
	})
	if col.Starts() != 180 {
		t.Fatalf("starts = %d, want 180", col.Starts())
	}
	sum := col.Summary()
	if !strings.Contains(sum, "operations started: 180") {
		t.Fatalf("summary:\n%s", sum)
	}
	if tl := col.FormatTimeline(3); strings.Count(tl, "\n") != 3 {
		t.Fatalf("timeline:\n%s", tl)
	}
	// Detaching the tracer must not break execution.
	fw.SetTracer(nil)
	env.Run(func(th *hcf.Thread) {
		fw.Execute(th, incOp{addr: counter})
	})
	if got := env.Boot().Load(counter); got != 186 {
		t.Fatalf("counter = %d", got)
	}
}

// TestCollectorConcurrentRealBackend drives the collector from real OS
// threads (exercised under -race in CI): the per-thread shards must accept
// concurrent emission, and the counter accessors must be safe mid-run.
func TestCollectorConcurrentRealBackend(t *testing.T) {
	const threads, perThread = 6, 200
	env := hcf.NewRealEnv(threads)
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
		TryPrivateTrials:   2,
		TryVisibleTrials:   2,
		TryCombiningTrials: 3,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	col := &tracing.Collector{Limit: 64}
	fw.SetTracer(col)
	counter := env.Alloc(1)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < perThread; i++ {
			fw.Execute(th, incOp{addr: counter})
			_ = col.Starts() // live counter reads race-test the accessors
			_ = col.Dropped()
		}
	})
	if got := env.Boot().Load(counter); got != threads*perThread {
		t.Fatalf("counter = %d, want %d", got, threads*perThread)
	}
	if col.Starts() != threads*perThread {
		t.Fatalf("starts = %d, want %d", col.Starts(), threads*perThread)
	}
	if got := len(col.Events()); got > threads*64 {
		t.Fatalf("retained %d events over the %d ring bound", got, threads*64)
	}
}
