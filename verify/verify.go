// Package verify exposes the serialization-witness linearizability checker
// for users of the hcf module: install a Recorder on any engine (every
// engine in this module implements hcf.Engine and the witness hook), run
// your workload, then replay the witnessed history against a sequential
// model of YOUR data structure. A valid replay proves every operation was
// applied exactly once, atomically, and in an order consistent with the
// engine's serialization — the strongest end-to-end check available here.
//
//	rec := &verify.Recorder{}
//	fw.SetWitness(rec.Func())
//	env.Run(...)
//	err := verify.Check(rec, myModel, totalOps, nil)
//
// See cmd/hcffuzz for schedule-fuzzed application of the same machinery.
package verify

import (
	"fmt"
	"math/rand/v2"

	"hcf"
	"hcf/internal/witness"
)

// Recorder collects witnessed operation applications. Install with
// (*hcf.Framework).SetWitness(rec.Func()) — or the SetWitness method of any
// baseline engine — before running operations.
type Recorder = witness.Recorder

// Entry is one witnessed application.
type Entry = witness.Entry

// Model is a sequential reference implementation of the data structure
// under test: Apply must return the result a sequential execution of op
// would produce.
type Model = witness.Model

// Check replays the recorded history in serialization order against model
// and returns an error describing the first divergence. expectOps, when
// >= 0, additionally requires exactly that many applications. rank, when
// non-nil, orders operations within atomic combined batches (needed only
// for combiners that apply one kind after the others; pass nil otherwise).
func Check(r *Recorder, model Model, expectOps int, rank func(op hcf.Op) int) error {
	return witness.Check(r, model, expectOps, rank)
}

// CombinerTrial is one randomized test case for CheckCombiner: a fresh data
// structure, a batch of operations against it, and a sequential model
// preloaded to the same state.
type CombinerTrial struct {
	// Batch is the operation batch to hand to the combiner.
	Batch []hcf.Op
	// Model must reflect the data structure's pre-batch state.
	Model Model
	// Rank, when non-nil, defines the combiner's canonical in-batch
	// application order (same contract as Check). Nil means index order.
	Rank func(op hcf.Op) int
}

// CheckCombiner validates a RunMulti implementation against the combiner
// contract: for `trials` randomized trials produced by setup (which
// receives a fresh bootstrap Ctx and a deterministic rng each time), the
// combiner must complete every operation with results matching a
// sequential replay of the batch in canonical order. It returns the first
// divergence.
func CheckCombiner(combine hcf.CombineFunc, trials int, seed uint64,
	setup func(ctx hcf.Ctx, r *rand.Rand) CombinerTrial) error {
	for trial := 0; trial < trials; trial++ {
		env := hcf.NewDetEnv(1)
		rng := rand.New(rand.NewPCG(seed, uint64(trial)))
		tc := setup(env.Boot(), rng)
		n := len(tc.Batch)
		res := make([]uint64, n)
		done := make([]bool, n)
		// Drive like the framework: call until everything completes,
		// requiring progress each round.
		for remaining := n; remaining > 0; {
			combine(env.Boot(), tc.Batch, res, done)
			completed := 0
			for _, d := range done {
				if d {
					completed++
				}
			}
			if n-completed == remaining {
				return fmt.Errorf("trial %d: combiner made no progress with %d operations pending", trial, remaining)
			}
			remaining = n - completed
		}
		// Replay in canonical order.
		type entry struct {
			rank, idx int
		}
		order := make([]entry, n)
		for i, op := range tc.Batch {
			r := 0
			if tc.Rank != nil {
				r = tc.Rank(op)
			}
			order[i] = entry{rank: r, idx: i}
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if order[b].rank < order[a].rank ||
					(order[b].rank == order[a].rank && order[b].idx < order[a].idx) {
					order[a], order[b] = order[b], order[a]
				}
			}
		}
		for _, e := range order {
			want := tc.Model.Apply(tc.Batch[e.idx])
			if res[e.idx] != want {
				return fmt.Errorf("trial %d: op %d returned %d, sequential replay gives %d",
					trial, e.idx, res[e.idx], want)
			}
		}
	}
	return nil
}
