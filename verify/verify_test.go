package verify_test

import (
	"math/rand/v2"
	"testing"

	"hcf"
	"hcf/internal/seq/queue"
	"hcf/tracing"
	"hcf/verify"
)

// pushOp / popOp: a tiny user-defined stack over simulated memory, written
// exactly the way a downstream user would write one.
type pushOp struct {
	top hcf.Addr
	val uint64
}

func (o pushOp) Apply(ctx hcf.Ctx) uint64 {
	n := ctx.Alloc(hcf.WordsPerLine)
	ctx.Store(n, o.val)
	ctx.Store(n+1, ctx.Load(o.top))
	ctx.Store(o.top, uint64(n))
	return hcf.PackBool(true)
}

func (o pushOp) Class() int { return 0 }

type popOp struct {
	top hcf.Addr
}

func (o popOp) Apply(ctx hcf.Ctx) uint64 {
	n := hcf.Addr(ctx.Load(o.top))
	if n == 0 {
		return hcf.Pack(0, false)
	}
	v := ctx.Load(n)
	ctx.Store(o.top, ctx.Load(n+1))
	ctx.Free(n, hcf.WordsPerLine)
	return hcf.Pack(v, true)
}

func (o popOp) Class() int { return 0 }

// stackModel is the user's sequential reference implementation.
type stackModel struct{ vals []uint64 }

func (m *stackModel) Apply(op hcf.Op) uint64 {
	switch o := op.(type) {
	case pushOp:
		m.vals = append(m.vals, o.val)
		return hcf.PackBool(true)
	case popOp:
		if len(m.vals) == 0 {
			return hcf.Pack(0, false)
		}
		v := m.vals[len(m.vals)-1]
		m.vals = m.vals[:len(m.vals)-1]
		return hcf.Pack(v, true)
	}
	return 0
}

func TestPublicVerifyAndTracingFlow(t *testing.T) {
	const threads, perThread = 8, 40
	env := hcf.NewDetEnv(threads)
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
		TryPrivateTrials:   2,
		TryVisibleTrials:   2,
		TryCombiningTrials: 4,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &verify.Recorder{}
	fw.SetWitness(rec.Func())
	col := &tracing.Collector{}
	fw.SetTracer(col)

	top := env.Alloc(hcf.WordsPerLine)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < perThread; i++ {
			if (th.ID()+i)%2 == 0 {
				fw.Execute(th, pushOp{top: top, val: uint64(th.ID()*1000 + i)})
			} else {
				fw.Execute(th, popOp{top: top})
			}
		}
	})
	if err := verify.Check(rec, &stackModel{}, threads*perThread, nil); err != nil {
		t.Fatal(err)
	}
	if col.Starts() != threads*perThread {
		t.Fatalf("tracing saw %d starts, want %d", col.Starts(), threads*perThread)
	}
	if col.Summary() == "" {
		t.Fatal("empty trace summary")
	}
}

func TestVerifyCatchesBrokenModel(t *testing.T) {
	env := hcf.NewDetEnv(2)
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{TryPrivateTrials: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &verify.Recorder{}
	fw.SetWitness(rec.Func())
	top := env.Alloc(hcf.WordsPerLine)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < 10; i++ {
			fw.Execute(th, pushOp{top: top, val: 1})
		}
	})
	// A model whose pushes "fail" must diverge immediately.
	broken := modelFunc(func(op hcf.Op) uint64 { return hcf.PackBool(false) })
	if err := verify.Check(rec, broken, 20, nil); err == nil {
		t.Fatal("broken model not detected")
	}
}

type modelFunc func(op hcf.Op) uint64

func (f modelFunc) Apply(op hcf.Op) uint64 { return f(op) }

func TestCheckCombinerValidatesQueueCombiner(t *testing.T) {
	err := verify.CheckCombiner(queue.CombineMixed, 40, 7,
		func(ctx hcf.Ctx, r *rand.Rand) verify.CombinerTrial {
			q := queue.New(ctx)
			m := &fifoModel{}
			for i := 0; i < r.IntN(6); i++ {
				v := r.Uint64N(100)
				q.Enqueue(ctx, v)
				m.vals = append(m.vals, v)
			}
			n := 1 + r.IntN(8)
			batch := make([]hcf.Op, n)
			for i := range batch {
				if r.IntN(2) == 0 {
					batch[i] = queue.EnqueueOp{Q: q, Val: r.Uint64N(100)}
				} else {
					batch[i] = queue.DequeueOp{Q: q}
				}
			}
			return verify.CombinerTrial{
				Batch: batch,
				Model: m,
				Rank: func(op hcf.Op) int {
					if _, ok := op.(queue.DequeueOp); ok {
						return 1 // dequeues apply after the enqueue splice
					}
					return 0
				},
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckCombinerDetectsBrokenCombiner(t *testing.T) {
	// A "combiner" that marks everything done with wrong results.
	broken := func(ctx hcf.Ctx, ops []hcf.Op, res []uint64, done []bool) {
		for i := range ops {
			res[i] = 0xDEAD
			done[i] = true
		}
	}
	err := verify.CheckCombiner(broken, 3, 1,
		func(ctx hcf.Ctx, r *rand.Rand) verify.CombinerTrial {
			q := queue.New(ctx)
			return verify.CombinerTrial{
				Batch: []hcf.Op{queue.EnqueueOp{Q: q, Val: 1}},
				Model: &fifoModel{},
			}
		})
	if err == nil {
		t.Fatal("broken combiner accepted")
	}
}

func TestCheckCombinerDetectsNoProgress(t *testing.T) {
	stuck := func(ctx hcf.Ctx, ops []hcf.Op, res []uint64, done []bool) {}
	err := verify.CheckCombiner(stuck, 1, 1,
		func(ctx hcf.Ctx, r *rand.Rand) verify.CombinerTrial {
			q := queue.New(ctx)
			return verify.CombinerTrial{
				Batch: []hcf.Op{queue.EnqueueOp{Q: q, Val: 1}},
				Model: &fifoModel{},
			}
		})
	if err == nil {
		t.Fatal("stuck combiner accepted")
	}
}

// fifoModel is the user-side sequential queue model.
type fifoModel struct{ vals []uint64 }

func (m *fifoModel) Apply(op hcf.Op) uint64 {
	switch o := op.(type) {
	case queue.EnqueueOp:
		m.vals = append(m.vals, o.Val)
		return hcf.PackBool(true)
	case queue.DequeueOp:
		if len(m.vals) == 0 {
			return hcf.Pack(0, false)
		}
		v := m.vals[0]
		m.vals = m.vals[1:]
		return hcf.Pack(v, true)
	}
	return 0
}
